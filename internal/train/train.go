// Package train is the functional plane of the Poseidon reproduction:
// real data-parallel SGD over real tensors, synchronized through the
// paper's protocol. The communication itself — per-parameter syncers
// (PS / SFB / 1-bit), the sharded bulk-synchronous KV store, chunked
// overlapped pushes — lives in internal/comm; this package only builds
// the model, shards the data, derives the per-parameter routing plan
// from the cost model, and drives the compute loop against the
// synchronization runtime.
//
// The trainer is transport-agnostic: hand each worker a
// transport.Mesh endpoint (in-process channels or real TCP) and it
// speaks the same wire protocol.
package train

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/nn/autodiff"
	"repro/internal/poseidon"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// SyncMode selects the communication strategy for the functional plane.
type SyncMode int

// Supported strategies.
const (
	// PSOnly routes every parameter through the sharded KV store.
	PSOnly SyncMode = iota
	// Hybrid routes FC weight matrices through SFB when the paper's
	// cost model prefers it, everything else through the KV store.
	Hybrid
	// OneBit quantizes FC weight-gradient pushes to 1 bit with residual
	// feedback (CNTK baseline); other tensors use the KV store.
	OneBit
)

// String names the mode.
func (m SyncMode) String() string {
	switch m {
	case PSOnly:
		return "PS"
	case Hybrid:
		return "Hybrid"
	case OneBit:
		return "1bit"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config parameterizes a functional training run.
type Config struct {
	Workers int
	Iters   int
	Batch   int // per-worker batch size
	LR      float32
	Mode    SyncMode
	Seed    int64

	// Staleness bounds how many iterations a fast worker may run ahead
	// of the slowest layer synchronization (stale synchronous parallel;
	// Ho et al., cited by the paper as the consistency relaxation
	// Poseidon's design extends to). 0 is BSP.
	Staleness int

	// Overlap streams pushes through the comm runtime's bounded send
	// pool, so a layer's chunks are on the wire while later layers are
	// still being launched (wait-free backpropagation). Off, every send
	// completes before the next launch — the serialized baseline.
	Overlap bool
	// ChunkElems caps the float32 count per KV chunk on the PS route
	// (0 = whole tensors). Chunking spreads one large layer across all
	// shards so its pushes overlap each other.
	ChunkElems int
	// PoolWorkers sizes the send pool when Overlap is on (0 = default).
	PoolWorkers int

	// BuildNet constructs the model; it is called once per worker with
	// an identically seeded RNG so all replicas start identical.
	BuildNet func(rng *rand.Rand) *autodiff.Network

	// EvalEvery > 0 makes worker 0 evaluate on the test set every that
	// many iterations.
	EvalEvery int
	TrainSet  *data.Dataset // sharded across workers
	TestSet   *data.Dataset // evaluated by worker 0

	// Progress, when set, is called with every recorded Point as the
	// run produces it — the streaming hook multi-process workers use to
	// report liveness before the curve is complete. Called from the
	// worker's compute goroutine; keep it fast.
	Progress func(Point)

	// RouteOverrides pins parameter index → scheme, trumping the
	// planner's policy for those tensors (the worker's -route flag and
	// ablations). Overriding a non-FC tensor onto SFB or 1-bit fails at
	// plan time.
	RouteOverrides map[int]poseidon.Scheme

	// Bandwidth seeds the planner's link-speed estimate in bytes/second
	// (the worker's -bw flag). A positive value makes Algorithm 1
	// bandwidth-aware — scheme choice by modeled seconds, including the
	// per-frame overhead — instead of byte-count-only. 0 keeps the
	// classic byte-count rule.
	Bandwidth float64

	// Replan enables measured-bandwidth re-planning: every Replan.Every
	// iterations the cluster drains to a round barrier, worker 0 folds
	// the wire rate it actually measured into the planner's EWMA
	// estimate, re-runs Algorithm 1 under it, and broadcasts the
	// (possibly unchanged) routing decision in a clock-stamped REPLAN
	// frame that every worker applies deterministically — so a cluster
	// started with a mis-set Bandwidth converges onto the plan its real
	// network deserves, with replicas staying byte-identical.
	Replan ReplanSpec

	// Metrics, when set, receives this worker's live communication
	// counters (per-parameter wire traffic, sync-stall time, KV
	// rounds); snapshot it after the run for the -metrics-dump report.
	Metrics *metrics.Comm

	// Elastic enables membership epochs: a peer failure or voluntary
	// departure no longer aborts the run — the survivors drain to a
	// membership barrier, agree on a successor view, re-shard data and
	// parameter state, and continue at the barrier's restart iteration.
	// Workers and PS shards contract and expand together (shards are
	// colocated with workers, as in the paper's deployments). Mutually
	// exclusive with Replan: both protocols own the round barrier.
	Elastic bool
	// View is the initial membership (zero value: all mesh ranks,
	// cluster.Initial(mesh.N())). In an elastic run the mesh is sized
	// for cluster *capacity*; View names the ranks actually serving.
	View cluster.View
	// Joining marks this worker as a late joiner: it is not in View,
	// contributes no halt, and adopts everything — view, routes,
	// parameters — from its first membership barrier.
	Joining bool
	// StartIter, when > 0, resumes training at that iteration instead
	// of 0 — the continuation point of a run seeded from a snapshot
	// (InitialParams then carry the snapshot replica). Used by the
	// churn parity harness to replay a post-crash epoch from the state
	// the survivors adopted.
	StartIter int
	// InitialParams, when set, overwrite the built network's parameters
	// before training starts (row-major float32, Params() order) — the
	// snapshot companion of StartIter.
	InitialParams [][]float32
	// LeaveAt > 0 makes this worker announce a voluntary departure at
	// that iteration: it calls Leave, participates in the membership
	// barrier, and returns with Result.Left set once excluded.
	LeaveAt int
	// OnViewChange, when set, is called from the compute goroutine
	// after each membership barrier commits, with the successor view
	// and a deep copy of the adopted replica — the snapshot a parity
	// reference run continues from.
	OnViewChange func(ViewEvent)
	// ViewTimeout bounds each membership barrier (0 = comm default).
	ViewTimeout time.Duration

	// SnapshotEvery > 0 fires OnSnapshot every that many iterations at
	// the round barrier — right after the synchronized replica is
	// adopted, so the captured bytes are identical across workers — plus
	// once more with the final replica when the run drains.
	SnapshotEvery int
	// OnSnapshot receives each barrier capture on the worker whose
	// transport rank is SnapshotRank. Params are the live tensors,
	// valid only for the duration of the call: copy what you keep.
	OnSnapshot func(SnapshotEvent)
	// SnapshotRank is the transport rank that feeds OnSnapshot (in a
	// shared-Config in-process run, exactly one worker must capture).
	SnapshotRank int
	// Stop, when non-nil, aborts the run when it becomes receivable:
	// the router is poisoned with ErrCanceled and the compute loop
	// surfaces it at its next synchronization point. This is the
	// cancellation hook Session.RunContext wires to ctx.Done().
	Stop <-chan struct{}
}

// ErrCanceled is the error a run aborts with when Config.Stop fires.
var ErrCanceled = errors.New("train: run canceled")

// SnapshotEvent is one barrier capture of the synchronized replica.
type SnapshotEvent struct {
	// Iter is the round barrier the capture was taken at: the replica
	// has folded exactly Iter iterations.
	Iter int
	// Epoch is the membership epoch the capture was taken under.
	Epoch int
	// Params are the live parameter tensors in Params() order, borrowed
	// for the duration of the OnSnapshot call only.
	Params []*tensor.Matrix
}

// ViewEvent describes one committed membership transition, as observed
// by a worker's compute loop.
type ViewEvent struct {
	// View is the successor membership.
	View cluster.View
	// RestartIter is the iteration training resumed at. Iterations in
	// flight when the trigger hit are skipped, not recomputed: every
	// surviving replica adopted the leader's bytes, so the run stays
	// consistent — it just loses the fenced-out rounds.
	RestartIter int
	// Params is a deep copy of the adopted replica (Params() order),
	// taken before the first post-barrier iteration.
	Params [][]float32
}

// ReplanSpec configures measured-bandwidth re-planning (Config.Replan).
type ReplanSpec struct {
	// Every is the epoch length in iterations: each multiple of it is a
	// replan barrier. 0 disables replanning. Must exceed Staleness —
	// barriers are armed one epoch ahead, and an epoch shorter than the
	// staleness window could let a fast worker outrun the arming.
	Every int
	// Alpha is the EWMA weight of the newest bandwidth observation
	// (0 = poseidon.DefaultReplanAlpha).
	Alpha float64
	// Hysteresis is the fractional modeled-time advantage required to
	// flip a route (0 = poseidon.DefaultReplanHysteresis).
	Hysteresis float64
	// FrameOverhead is the modeled fixed cost per wire frame in seconds
	// (0 = poseidon.DefaultFrameOverheadSec whenever the planner is
	// bandwidth-aware).
	FrameOverhead float64
}

// Point is one recorded training measurement.
type Point struct {
	Iter      int
	TrainLoss float64
	TestErr   float64 // test error rate on eval points, -1 everywhere else
}

// Result aggregates a run's curves and final state.
type Result struct {
	Curve []Point
	Final *autodiff.Network // worker 0's final replica
	Mode  SyncMode
	// Left is true when this worker departed voluntarily at a
	// membership barrier (Config.LeaveAt); Final then holds the replica
	// as of the departure, not the run's end.
	Left bool
}

// Run executes a full data-parallel training run over an in-process
// channel mesh and returns worker 0's result. All replicas are verified
// to agree at the end (BSP invariant).
func Run(cfg Config) (*Result, error) {
	meshes := transport.NewChanCluster(cfg.Workers)
	endpoints := make([]transport.Mesh, cfg.Workers)
	for i, m := range meshes {
		endpoints[i] = m
	}
	return RunOver(cfg, endpoints)
}

// RunOver executes one worker per provided mesh endpoint and returns
// endpoint 0's result — the injection point for custom transports
// (bandwidth-modeled DelayMesh wrappers, instrumented meshes).
func RunOver(cfg Config, meshes []transport.Mesh) (*Result, error) {
	results, err := RunOverAll(cfg, meshes)
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// RunOverAll is RunOver keeping every worker's result (each worker
// records loss on its own data shard — what parity tests and reference
// runs need). Every endpoint is closed when all workers finish:
// per-endpoint transports (one TCPMesh per worker) each own real
// sockets, and for cluster-scoped transports (ChanCluster) the extra
// Closes are idempotent no-ops.
func RunOverAll(cfg Config, meshes []transport.Mesh) ([]*Result, error) {
	if len(meshes) != cfg.Workers {
		return nil, fmt.Errorf("train: %d mesh endpoints for %d workers", len(meshes), cfg.Workers)
	}
	results := make([]*Result, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[w], errs[w] = RunWorker(cfg, meshes[w])
		}()
	}
	wg.Wait()
	for _, m := range meshes {
		m.Close()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// RunWorker executes one worker of a data-parallel run over the given
// mesh endpoint. Every participant must call it with an identical
// Config.
func RunWorker(cfg Config, mesh transport.Mesh) (*Result, error) {
	w := &worker{cfg: cfg, mesh: mesh, rank: mesh.Self(), id: mesh.Self(), n: mesh.N()}
	res, err := w.run()
	if err != nil && cfg.Stop != nil && !errors.Is(err, ErrCanceled) {
		// A fired Stop races the cluster-wide abort it triggers: a peer
		// that observed the cancellation first aborts the mesh, and this
		// worker can surface that peer's abort before its own stop
		// watcher poisons the router. Once Stop is receivable, any abort
		// is the cancellation propagating — report it as such.
		select {
		case <-cfg.Stop:
			err = fmt.Errorf("%w (via cluster abort: %v)", ErrCanceled, err)
		default:
		}
	}
	return res, err
}

type worker struct {
	cfg  Config
	mesh transport.Mesh
	// rank is the immutable transport endpoint id; id and n are the
	// dense index and size within the current membership view, which an
	// elastic run rebinds at every membership barrier.
	rank int
	id   int
	n    int
	// epoch tracks the membership epoch of the view the worker is
	// currently seated in (versioning for barrier snapshots).
	epoch int

	net    *autodiff.Network
	router *comm.Router
	local  *data.Dataset
}

// snapshots reports whether this worker feeds Config.OnSnapshot.
func (w *worker) snapshots() bool {
	return w.cfg.SnapshotEvery > 0 && w.cfg.OnSnapshot != nil && w.rank == w.cfg.SnapshotRank
}

// snapshotBarrier hands the freshly adopted replica to the snapshot
// hook. Called only at round barriers, where params are synchronized.
func (w *worker) snapshotBarrier(iter int, params []*tensor.Matrix) {
	w.cfg.OnSnapshot(SnapshotEvent{Iter: iter, Epoch: w.epoch, Params: params})
}

func (w *worker) run() (*Result, error) {
	cfg := w.cfg
	if cfg.Elastic && cfg.Replan.Every > 0 {
		return nil, fmt.Errorf("train: membership epochs and measured replanning both own the round barrier; enable one")
	}
	if !cfg.Elastic {
		if cfg.Joining {
			return nil, fmt.Errorf("train: Joining requires Elastic")
		}
		if cfg.View.Size() > 0 {
			return nil, fmt.Errorf("train: View requires Elastic")
		}
	}
	if cfg.StartIter < 0 || (cfg.StartIter > 0 && cfg.StartIter >= cfg.Iters) {
		return nil, fmt.Errorf("train: start iteration %d outside [0,%d)", cfg.StartIter, cfg.Iters)
	}
	if cfg.LeaveAt > 0 {
		if !cfg.Elastic {
			return nil, fmt.Errorf("train: LeaveAt requires Elastic")
		}
		if cfg.LeaveAt <= cfg.StartIter || cfg.LeaveAt >= cfg.Iters {
			return nil, fmt.Errorf("train: LeaveAt %d outside (%d,%d)", cfg.LeaveAt, cfg.StartIter, cfg.Iters)
		}
	}
	view := cfg.View.Clone()
	if cfg.Elastic {
		if view.Size() == 0 {
			view = cluster.Initial(w.mesh.N())
		}
		w.n = view.Size()
		w.epoch = view.Epoch
		if cfg.Joining {
			// A joiner has no dense index until its first membership
			// barrier seats it; it adopts view, routes, parameters, and
			// data shard from the barrier.
			w.id = -1
		} else {
			w.id = view.Index(w.rank)
			if w.id < 0 {
				return nil, fmt.Errorf("train: rank %d not in initial view %v", w.rank, view.Members)
			}
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w.net = cfg.BuildNet(rng)
	if !cfg.Joining {
		w.local = cfg.TrainSet.Shard(w.id, w.n)
	}

	mtr := cfg.Metrics
	if cfg.Replan.Every > 0 {
		if cfg.Replan.Every <= cfg.Staleness {
			return nil, fmt.Errorf("train: replan interval %d must exceed staleness %d", cfg.Replan.Every, cfg.Staleness)
		}
		if mtr == nil {
			// The bandwidth estimator differences the router's egress
			// counters, which exist only with metrics attached.
			mtr = metrics.NewComm()
		}
	}

	params := w.net.Params()
	grads := w.net.Grads()
	if cfg.InitialParams != nil {
		if len(cfg.InitialParams) != len(params) {
			return nil, fmt.Errorf("train: %d initial parameter tensors for a %d-parameter net", len(cfg.InitialParams), len(params))
		}
		for i, p := range params {
			if len(cfg.InitialParams[i]) != len(p.Data) {
				return nil, fmt.Errorf("train: initial parameter %d has %d elems, want %d", i, len(cfg.InitialParams[i]), len(p.Data))
			}
			copy(p.Data, cfg.InitialParams[i])
		}
	}
	planner := plannerFor(cfg, w.n)
	plans, sfFor, err := plansFor(planner, w.net)
	if err != nil {
		return nil, err
	}
	rcfg := comm.Config{
		Mesh:   w.mesh,
		Plans:  plans,
		Params: params,
		// The cluster-wide update is −LR · mean over all P·K samples, so
		// each worker contributes −LR/P of its local mean gradient.
		Scale:       -cfg.LR / float32(w.n),
		Staleness:   cfg.Staleness,
		Overlap:     cfg.Overlap,
		ChunkElems:  cfg.ChunkElems,
		PoolWorkers: cfg.PoolWorkers,
		StartIter:   cfg.StartIter,
		Metrics:     mtr,
		// Reroutes can move a parameter onto SFB after construction; the
		// router re-attaches the extractor through this source.
		SFSource: func(index int) func() *tensor.SufficientFactor { return sfFor[index] },
	}
	if cfg.Elastic {
		rcfg.Elastic = true
		rcfg.View = view
		rcfg.Joining = cfg.Joining
		rcfg.ViewTimeout = cfg.ViewTimeout
		// Contraction and expansion rescale each worker's contribution so
		// the cluster-wide update stays −LR · mean over all live samples.
		rcfg.ScaleFor = func(workers int) float32 { return -cfg.LR / float32(workers) }
		// The barrier leader re-runs Algorithm 1 for the successor shape
		// and broadcasts the routes with the view, so replicas stay
		// byte-identical through the transition.
		rcfg.PlanShape = func(workers int) ([]comm.ParamPlan, error) {
			return planner.ReplanShape(poseidon.ClusterShape{Workers: workers, Servers: workers, Batch: cfg.Batch})
		}
	}
	router, err := comm.NewRouter(rcfg)
	if err != nil {
		return nil, err
	}
	w.router = router
	router.Start()
	defer router.Stop()

	// Cancellation: poison the router when Stop fires, so the compute
	// loop surfaces ErrCanceled at its next WaitFor/Err instead of
	// blocking on peers that may have stopped too.
	if cfg.Stop != nil {
		watcherDone := make(chan struct{})
		defer close(watcherDone)
		go func() {
			select {
			case <-cfg.Stop:
				router.Abort(ErrCanceled)
			case <-watcherDone:
			}
		}()
	}

	// Replan barriers: armed one epoch ahead so post-barrier frames from
	// fast peers park instead of reaching pre-barrier syncers; worker 0
	// measures, re-plans, and broadcasts the decision at each one. A
	// continuation run (StartIter > 0) arms the first barrier past its
	// starting point.
	nextBarrier := 0
	if cfg.Replan.Every > 0 {
		nextBarrier = (cfg.StartIter/cfg.Replan.Every + 1) * cfg.Replan.Every
		if nextBarrier >= cfg.Iters {
			nextBarrier = 0 // no barriers left; nothing to arm
		} else {
			router.ArmReroute(nextBarrier)
		}
	}
	winStart := time.Now()
	winBytes := router.EgressBytes()

	res := &Result{Mode: cfg.Mode}
	leaveSent := false
	for iter := cfg.StartIter; ; {
		if nextBarrier > 0 && iter == nextBarrier {
			if err := w.replanBarrier(iter, planner, mtr, &winStart, &winBytes); err != nil {
				return nil, err
			}
			nextBarrier += cfg.Replan.Every
			if nextBarrier >= cfg.Iters {
				nextBarrier = 0 // no more barriers; nothing left to arm
			} else {
				router.ArmReroute(nextBarrier)
			}
		}
		if cfg.LeaveAt > 0 && iter >= cfg.LeaveAt && !leaveSent {
			leaveSent = true
			if err := router.Leave(); err != nil {
				return nil, err
			}
		}
		// Gate on the consistency model (BSP when Staleness is 0); once
		// every iteration is launched, wait instead for the final round
		// to be fully synchronized everywhere (drain).
		if iter < cfg.Iters {
			router.WaitFor(iter)
		} else {
			router.WaitFor(cfg.Iters + cfg.Staleness)
		}
		if cfg.Elastic && router.ViewPending() {
			vc, err := router.AwaitView(iter)
			if err != nil {
				return nil, err
			}
			if vc.Left {
				res.Left = true
				break
			}
			if err := w.applyView(vc, planner, params); err != nil {
				return nil, err
			}
			iter = vc.RestartIter
			continue
		}
		if err := router.Err(); err != nil {
			return nil, err
		}
		if iter >= cfg.Iters {
			break
		}
		// Adopt the freshest synchronized replica, then compute.
		router.Adopt(params)
		if w.snapshots() && iter > cfg.StartIter && iter%cfg.SnapshotEvery == 0 {
			w.snapshotBarrier(iter, params)
		}

		x, labels := w.local.Batch(iter*cfg.Batch, cfg.Batch)
		w.net.ZeroGrads()
		loss, _ := w.net.LossAndGrad(x, labels)

		// Launch every syncer (the paper's Algorithm 2 sync() calls).
		if err := router.LaunchAll(iter, grads); err != nil {
			return nil, err
		}

		p := Point{Iter: iter, TrainLoss: loss, TestErr: -1}
		if cfg.EvalEvery > 0 && w.id == 0 && (iter+1)%cfg.EvalEvery == 0 && cfg.TestSet != nil {
			_, errRate := w.net.Eval(cfg.TestSet.X, cfg.TestSet.Labels)
			p.TestErr = errRate
		}
		res.Curve = append(res.Curve, p)
		if cfg.Progress != nil {
			cfg.Progress(p)
		}
		iter++
	}
	// Adopt the final synchronized replica — for a leaver, the replica
	// as of its departure barrier.
	router.Adopt(params)
	if !res.Left {
		if err := router.Err(); err != nil {
			return nil, err
		}
		if w.snapshots() {
			// The drain capture: the fully synchronized final replica.
			w.snapshotBarrier(cfg.Iters, params)
		}
	}
	res.Final = w.net
	return res, nil
}

// applyView rebinds the worker to a committed membership view: dense
// index, member count, data shard, and the planner's cluster shape.
// The local replan keeps this member's planner consistent with the one
// the barrier leader consulted, so any member can lead the next
// barrier; the routes themselves were already adopted from the leader's
// broadcast inside the router.
func (w *worker) applyView(vc comm.ViewChange, planner *poseidon.Planner, params []*tensor.Matrix) error {
	w.id = vc.View.Index(w.rank)
	w.n = vc.View.Size()
	w.epoch = vc.View.Epoch
	if w.id < 0 {
		return fmt.Errorf("train: rank %d missing from committed view %v", w.rank, vc.View.Members)
	}
	w.local = w.cfg.TrainSet.Shard(w.id, w.n)
	if _, err := planner.ReplanShape(poseidon.ClusterShape{Workers: w.n, Servers: w.n, Batch: w.cfg.Batch}); err != nil {
		return err
	}
	if w.cfg.OnViewChange != nil {
		// Snapshot the adopted replica for the hook — the state a parity
		// reference run continues from (StartIter + InitialParams).
		w.router.Adopt(params)
		ev := ViewEvent{View: vc.View.Clone(), RestartIter: vc.RestartIter}
		ev.Params = make([][]float32, len(params))
		for i, p := range params {
			ev.Params[i] = append([]float32(nil), p.Data...)
		}
		w.cfg.OnViewChange(ev)
	}
	return nil
}

// replanBarrier executes one replan round barrier at iteration barrier.
// Worker 0 turns the egress bytes it moved since the previous barrier
// into a bandwidth observation, folds it into the planner's EWMA, and
// broadcasts the resulting decision; everyone else waits for that
// decision. Both sides apply it identically, then restart the
// measurement window.
func (w *worker) replanBarrier(barrier int, planner *poseidon.Planner, mtr *metrics.Comm, winStart *time.Time, winBytes *int64) error {
	var err error
	if w.id == 0 {
		var plans []comm.ParamPlan
		if elapsed := time.Since(*winStart).Seconds(); elapsed > 0 {
			obs := poseidon.BandwidthObservation{
				BytesPerSec: float64(w.router.EgressBytes()-*winBytes) / elapsed,
			}
			plans = planner.Replan(obs)
			mtr.SetBandwidthEstimate(planner.BandwidthEstimate())
		}
		_, err = w.router.Reroute(barrier, plans)
	} else {
		_, err = w.router.AwaitReroute(barrier)
	}
	if err != nil {
		return err
	}
	*winStart = time.Now()
	*winBytes = w.router.EgressBytes()
	return nil
}

// policyFor maps a SyncMode to its planner policy — the modes differ
// only in what Algorithm 1 may choose, not in bespoke routing code.
func policyFor(mode SyncMode) poseidon.Policy {
	switch mode {
	case PSOnly:
		return poseidon.PolicyPS
	case OneBit:
		return poseidon.PolicyOneBit
	default:
		return poseidon.PolicyHybrid
	}
}

// plannerFor builds the routing planner for a run with the given
// worker count (PS shards are colocated with workers, as in the
// paper's deployments). A configured bandwidth makes it
// bandwidth-aware — with the default per-frame overhead unless the
// Replan spec pins one — so the initial plan already reflects the link
// the caller claimed, and Replan corrects it from measurement.
func plannerFor(cfg Config, workers int) *poseidon.Planner {
	p := poseidon.NewPlanner(policyFor(cfg.Mode),
		poseidon.ClusterShape{Workers: workers, Servers: workers, Batch: cfg.Batch})
	p.BytesPerSec = cfg.Bandwidth
	p.FrameOverhead = cfg.Replan.FrameOverhead
	if p.FrameOverhead == 0 && (cfg.Bandwidth > 0 || cfg.Replan.Every > 0) {
		// Replanning without an initial -bw still needs the per-frame
		// term: the first measured observation makes the planner
		// bandwidth-aware, and a zero overhead would leave every Replan
		// a no-op.
		p.FrameOverhead = poseidon.DefaultFrameOverheadSec
	}
	p.Alpha = cfg.Replan.Alpha
	p.Hysteresis = cfg.Replan.Hysteresis
	for idx, s := range cfg.RouteOverrides {
		p.Override(idx, s)
	}
	return p
}

// PlannerFor returns the cost-model planner the trainer will consult
// for cfg — exported so tools (the worker's -autoplan dump) and tests
// can inspect routing decisions without running the cluster.
func PlannerFor(cfg Config) *poseidon.Planner { return plannerFor(cfg, cfg.Workers) }

// ParamSpecs derives the planner's tensor specs from a live network:
// one spec per trainable tensor in Params() order. FC weight matrices
// are the SF-capable tensors, located through the layer structure
// rather than by shape guessing.
func ParamSpecs(net *autodiff.Network) []poseidon.TensorSpec {
	var specs []poseidon.TensorSpec
	idx := 0
	for _, layer := range net.Layers {
		fc, isFC := layer.(*autodiff.FC)
		for pi, p := range layer.Params() {
			suffix := fmt.Sprintf(".p%d", pi)
			switch pi {
			case 0:
				suffix = ".W"
			case 1:
				suffix = ".b"
			}
			specs = append(specs, poseidon.TensorSpec{
				Index:     idx,
				Name:      layer.Name() + suffix,
				Rows:      p.Rows,
				Cols:      p.Cols,
				SFCapable: isFC && pi == 0 && fc.W == p,
			})
			idx++
		}
	}
	return specs
}

// Decisions previews the per-tensor routing for cfg with the cost
// numbers behind each choice (the worker's -autoplan report): it
// builds a throwaway replica from cfg.BuildNet and plans it. The
// preview validates like the run — an infeasible or unknown-parameter
// override errors here instead of mid-training.
func Decisions(cfg Config) ([]poseidon.Decision, error) {
	net := cfg.BuildNet(rand.New(rand.NewSource(cfg.Seed)))
	planner := PlannerFor(cfg)
	specs := ParamSpecs(net)
	if _, err := planner.ParamPlans(specs); err != nil {
		return nil, err
	}
	return planner.Plan(specs), nil
}

// buildPlans routes every parameter through poseidon.Planner — the
// single owner of the Algorithm 1 decision rule shared with the
// performance plane — then attaches the sufficient-factor extractors
// the SFB route needs (closures over live FC layer state the planner
// never sees).
func buildPlans(cfg Config, net *autodiff.Network, workers int) ([]comm.ParamPlan, error) {
	plans, _, err := plansFor(plannerFor(cfg, workers), net)
	return plans, err
}

// sfExtractors locates every tensor with a sufficient-factor
// decomposition (FC weight matrices) and returns parameter index →
// borrow extractor. Borrowed factors reference the layer's live
// backward buffers — the syncer encodes and copies them before the
// compute loop can overwrite, so the SFB route ships gradients without
// a per-iteration clone.
func sfExtractors(net *autodiff.Network) map[int]func() *tensor.SufficientFactor {
	out := make(map[int]func() *tensor.SufficientFactor)
	idx := 0
	for _, layer := range net.Layers {
		fc, isFC := layer.(*autodiff.FC)
		for pi, p := range layer.Params() {
			if isFC && pi == 0 && fc.W == p {
				fc := fc
				out[idx] = func() *tensor.SufficientFactor { return fc.BorrowSufficientFactor() }
			}
			idx++
		}
	}
	return out
}

// plansFor plans net's parameters on the given (retained) planner and
// attaches SF extractors; it also returns the extractor map so the
// router can re-attach extractors when a replan barrier moves a
// parameter onto SFB later.
func plansFor(planner *poseidon.Planner, net *autodiff.Network) ([]comm.ParamPlan, map[int]func() *tensor.SufficientFactor, error) {
	plans, err := planner.ParamPlans(ParamSpecs(net))
	if err != nil {
		return nil, nil, err
	}
	sfFor := sfExtractors(net)
	for i := range plans {
		if plans[i].Route == comm.RouteSFB {
			ext := sfFor[i]
			if ext == nil {
				return nil, nil, fmt.Errorf("train: param %d (%s) routed to SFB but has no sufficient factor", i, plans[i].Name)
			}
			plans[i].SF = ext
		}
	}
	return plans, sfFor, nil
}
