// Package train is the functional plane of the Poseidon reproduction:
// real data-parallel SGD over real tensors, synchronized through the
// paper's protocol — per-layer syncers, a sharded bulk-synchronous KV
// store, sufficient-factor broadcasting for FC layers chosen by the
// coordinator's cost model, and an optional CNTK-style 1-bit path for
// the Fig. 11 statistical comparison.
//
// The trainer is transport-agnostic: hand each worker a
// transport.Mesh endpoint (in-process channels or real TCP) and it
// speaks the same wire protocol.
package train

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/consistency"
	"repro/internal/data"
	"repro/internal/kvstore"
	"repro/internal/nn/autodiff"
	"repro/internal/sfb"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// SyncMode selects the communication strategy for the functional plane.
type SyncMode int

// Supported strategies.
const (
	// PSOnly routes every parameter through the sharded KV store.
	PSOnly SyncMode = iota
	// Hybrid routes FC weight matrices through SFB when the paper's
	// cost model prefers it, everything else through the KV store.
	Hybrid
	// OneBit quantizes FC weight-gradient pushes to 1 bit with residual
	// feedback (CNTK baseline); other tensors use the KV store.
	OneBit
)

// String names the mode.
func (m SyncMode) String() string {
	switch m {
	case PSOnly:
		return "PS"
	case Hybrid:
		return "Hybrid"
	case OneBit:
		return "1bit"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config parameterizes a functional training run.
type Config struct {
	Workers int
	Iters   int
	Batch   int // per-worker batch size
	LR      float32
	Mode    SyncMode
	Seed    int64

	// Staleness bounds how many iterations a fast worker may run ahead
	// of the slowest layer synchronization (stale synchronous parallel;
	// Ho et al., cited by the paper as the consistency relaxation
	// Poseidon's design extends to). 0 is BSP.
	Staleness int

	// BuildNet constructs the model; it is called once per worker with
	// an identically seeded RNG so all replicas start identical.
	BuildNet func(rng *rand.Rand) *autodiff.Network

	// EvalEvery > 0 makes worker 0 evaluate on the test set every that
	// many iterations.
	EvalEvery int
	TrainSet  *data.Dataset // sharded across workers
	TestSet   *data.Dataset // evaluated by worker 0
}

// Point is one recorded training measurement.
type Point struct {
	Iter      int
	TrainLoss float64
	TestErr   float64 // NaN-free: only set on eval points
}

// Result aggregates a run's curves and final state.
type Result struct {
	Curve []Point
	Final *autodiff.Network // worker 0's final replica
	Mode  SyncMode
}

// paramInfo describes one synchronized tensor.
type paramInfo struct {
	index    int // global parameter index
	key      string
	server   int
	useSFB   bool
	useQuant bool
}

// Run executes a full data-parallel training run over an in-process
// channel mesh and returns worker 0's result. All replicas are verified
// to agree at the end (BSP invariant).
func Run(cfg Config) (*Result, error) {
	meshes := transport.NewChanCluster(cfg.Workers)
	results := make([]*Result, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[w], errs[w] = RunWorker(cfg, meshes[w])
		}()
	}
	wg.Wait()
	meshes[0].Close()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results[0], nil
}

// RunWorker executes one worker of a data-parallel run over the given
// mesh endpoint. Every participant must call it with an identical
// Config.
func RunWorker(cfg Config, mesh transport.Mesh) (*Result, error) {
	w := &worker{cfg: cfg, mesh: mesh, id: mesh.Self(), n: mesh.N()}
	return w.run()
}

type worker struct {
	cfg  Config
	mesh transport.Mesh
	id   int
	n    int

	net    *autodiff.Network
	params []*tensor.Matrix
	grads  []*tensor.Matrix
	infos  []paramInfo

	shard *kvstore.Shard
	aggs  map[int]*sfb.Aggregator         // param index → aggregator
	quant map[int]*tensor.OneBitQuantizer // param index → push residual state
	// bcastQuant and workerView implement CNTK's second quantization:
	// the owning server also 1-bit-quantizes its broadcasts, carrying
	// its own residual; workerView tracks the replica state the workers
	// hold so the broadcast delta is computed against it.
	bcastQuant map[int]*tensor.OneBitQuantizer
	workerView map[int][]float32
	// staged is the authoritative replica the receiver goroutine writes
	// into (under stageMu); the compute thread copies staged → live
	// params at each iteration boundary, so inbound synchronization
	// never races an in-flight forward/backward pass.
	staged  []*tensor.Matrix
	stageMu sync.Mutex
	clock   *consistency.StalenessClock
	local   *data.Dataset
}

func (w *worker) run() (*Result, error) {
	cfg := w.cfg
	rng := rand.New(rand.NewSource(cfg.Seed))
	w.net = cfg.BuildNet(rng)
	w.params = w.net.Params()
	w.grads = w.net.Grads()
	w.shard = kvstore.NewShard(w.n)
	w.aggs = make(map[int]*sfb.Aggregator)
	w.quant = make(map[int]*tensor.OneBitQuantizer)
	w.bcastQuant = make(map[int]*tensor.OneBitQuantizer)
	w.workerView = make(map[int][]float32)
	w.local = cfg.TrainSet.Shard(w.id, w.n)

	// Build per-parameter sync plans. FC weight matrices are the
	// SF-capable tensors (rows>1 and cols>1 with a matching grad shape);
	// we locate them through the layer structure to avoid guessing.
	w.buildInfos()

	// Seed the KV store: every worker initializes its own shard's keys
	// from the (identical) initial replica.
	for _, info := range w.infos {
		if info.server == w.id && !info.useSFB {
			w.shard.Init(info.key, w.params[info.index].Data)
		}
	}
	w.clock = consistency.NewStalenessClock(len(w.infos), cfg.Staleness)
	for _, p := range w.params {
		w.staged = append(w.staged, p.Clone())
	}

	// Receiver goroutine: drives shard, aggregators, and the syncer
	// vector from inbound messages.
	recvErr := make(chan error, 1)
	go w.receiveLoop(recvErr)

	res := &Result{Mode: cfg.Mode}
	for iter := 0; iter < cfg.Iters; iter++ {
		// Gate on the consistency model (BSP when Staleness is 0), then
		// adopt the freshest synchronized replica.
		w.clock.WaitFor(iter)
		w.adoptStaged()

		x, labels := w.local.Batch(iter*cfg.Batch, cfg.Batch)
		w.net.ZeroGrads()
		loss, _ := w.net.LossAndGrad(x, labels)

		// Launch every syncer (the paper's Algorithm 2 sync() calls).
		for _, info := range w.infos {
			if err := w.launch(info, iter); err != nil {
				return nil, err
			}
		}

		select {
		case err := <-recvErr:
			return nil, err
		default:
		}

		p := Point{Iter: iter, TrainLoss: loss, TestErr: -1}
		if cfg.EvalEvery > 0 && w.id == 0 && (iter+1)%cfg.EvalEvery == 0 && cfg.TestSet != nil {
			_, errRate := w.net.Eval(cfg.TestSet.X, cfg.TestSet.Labels)
			p.TestErr = errRate
		}
		res.Curve = append(res.Curve, p)
	}
	// Drain: wait until the final iteration is fully synchronized
	// everywhere, then adopt it.
	w.clock.WaitFor(cfg.Iters + cfg.Staleness)
	w.adoptStaged()
	res.Final = w.net
	return res, nil
}

// adoptStaged copies the receiver-maintained replica into the live
// parameters.
func (w *worker) adoptStaged() {
	w.stageMu.Lock()
	defer w.stageMu.Unlock()
	for i, p := range w.params {
		p.CopyFrom(w.staged[i])
	}
}

// buildInfos assigns each parameter tensor a key, an owning shard, and a
// route (PS / SFB / 1-bit) using the paper's decision rule: SFB pays off
// for FC weight matrices when 2K(P−1)(M+N) ≤ 2MN(P+P−2)/P.
func (w *worker) buildInfos() {
	idx := 0
	for _, layer := range w.net.Layers {
		ps := layer.Params()
		fc, isFC := layer.(*autodiff.FC)
		for pi, p := range ps {
			info := paramInfo{
				index:  idx,
				key:    fmt.Sprintf("p%d", idx),
				server: idx % w.n,
			}
			isWeight := isFC && pi == 0 && fc.W == p
			if isWeight && w.n > 1 {
				m, n := int64(p.Rows), int64(p.Cols)
				k := int64(w.cfg.Batch)
				p1 := int64(w.n)
				sfbCost := 2 * k * (p1 - 1) * (m + n)
				psCost := 2 * m * n * (p1 + p1 - 2) / p1
				switch w.cfg.Mode {
				case Hybrid:
					if sfbCost <= psCost {
						info.useSFB = true
						w.aggs[idx] = sfb.NewAggregator(w.n, p.Rows, p.Cols)
					}
				case OneBit:
					info.useQuant = true
					w.quant[idx] = tensor.NewOneBitQuantizer(p.Rows, p.Cols)
					if info.server == w.id {
						w.bcastQuant[idx] = tensor.NewOneBitQuantizer(p.Rows, p.Cols)
						view := make([]float32, len(p.Data))
						copy(view, p.Data)
						w.workerView[idx] = view
					}
				}
			}
			w.infos = append(w.infos, info)
			idx++
		}
	}
}

// scale is the per-worker update scaling: the cluster-wide update is
// −LR · mean over all P·K samples, so each worker contributes −LR/P of
// its local mean gradient.
func (w *worker) scale() float32 { return -w.cfg.LR / float32(w.n) }

// launch starts one parameter's synchronization for this iteration.
func (w *worker) launch(info paramInfo, iter int) error {
	g := w.grads[info.index]
	switch {
	case info.useSFB:
		return w.launchSFB(info, iter)
	case info.useQuant:
		return w.launchQuant(info, iter)
	default:
		update := g.Clone()
		update.Scale(w.scale())
		return w.mesh.Send(info.server, transport.Message{
			Type:    transport.MsgPush,
			Layer:   int32(info.index),
			Iter:    int32(iter),
			Payload: tensor.AppendFloat32s(nil, update.Data),
		})
	}
}

// launchSFB extracts the layer's sufficient factor, scales it, offers
// the local copy, and broadcasts to all peers.
func (w *worker) launchSFB(info paramInfo, iter int) error {
	fc := w.fcForParam(info.index)
	sf := fc.SufficientFactor()
	sf.U.Scale(w.scale()) // fold −LR/P into U so ∇ reconstructions are additive
	payload := tensor.AppendSF(nil, sf)
	for p := 0; p < w.n; p++ {
		if p == w.id {
			continue
		}
		if err := w.mesh.Send(p, transport.Message{
			Type:    transport.MsgSF,
			Layer:   int32(info.index),
			Iter:    int32(iter),
			Payload: payload,
		}); err != nil {
			return err
		}
	}
	w.offerSF(info.index, int64(iter), sf)
	return nil
}

// launchQuant 1-bit-quantizes the scaled update (residual carried
// locally) and pushes the compact encoding.
func (w *worker) launchQuant(info paramInfo, iter int) error {
	update := w.grads[info.index].Clone()
	update.Scale(w.scale())
	q := w.quant[info.index].Quantize(update)
	return w.mesh.Send(info.server, transport.Message{
		Type:    transport.MsgQuantPush,
		Layer:   int32(info.index),
		Iter:    int32(iter),
		Payload: tensor.AppendQuantized(nil, q),
	})
}

// fcForParam returns the FC layer owning global parameter index.
func (w *worker) fcForParam(index int) *autodiff.FC {
	idx := 0
	for _, layer := range w.net.Layers {
		for range layer.Params() {
			if idx == index {
				return layer.(*autodiff.FC)
			}
			idx++
		}
	}
	panic("train: parameter index out of range")
}

// offerSF adds a factor to the parameter's aggregator; on completion it
// applies the summed update to the staged replica and advances the
// consistency clock.
func (w *worker) offerSF(index int, iter int64, sf *tensor.SufficientFactor) {
	grad, done := w.aggs[index].Offer(iter, sf)
	if !done {
		return
	}
	w.stageMu.Lock()
	w.staged[index].Add(grad)
	w.stageMu.Unlock()
	w.clock.Advance(index, int(iter))
}

// receiveLoop drives all inbound protocol messages until the mesh
// closes.
func (w *worker) receiveLoop(errc chan<- error) {
	for {
		msg, err := w.mesh.Recv()
		if err != nil {
			return // mesh closed
		}
		if err := w.handle(msg); err != nil {
			select {
			case errc <- err:
			default:
			}
			return
		}
	}
}

func (w *worker) handle(msg transport.Message) error {
	index := int(msg.Layer)
	switch msg.Type {
	case transport.MsgPush:
		vals, _, err := tensor.DecodeFloat32s(msg.Payload)
		if err != nil {
			return err
		}
		return w.serverPush(index, int(msg.Iter), vals)
	case transport.MsgQuantPush:
		q, _, err := tensor.DecodeQuantized(msg.Payload)
		if err != nil {
			return err
		}
		return w.serverPush(index, int(msg.Iter), q.Dequantize().Data)
	case transport.MsgBcast:
		vals, _, err := tensor.DecodeFloat32s(msg.Payload)
		if err != nil {
			return err
		}
		w.stageMu.Lock()
		copy(w.staged[index].Data, vals)
		w.stageMu.Unlock()
		w.clock.Advance(index, int(msg.Iter))
		return nil
	case transport.MsgQuantBcast:
		q, _, err := tensor.DecodeQuantized(msg.Payload)
		if err != nil {
			return err
		}
		w.stageMu.Lock()
		q.AddDequantizedInto(w.staged[index])
		w.stageMu.Unlock()
		w.clock.Advance(index, int(msg.Iter))
		return nil
	case transport.MsgSF:
		sf, _, err := tensor.DecodeSF(msg.Payload)
		if err != nil {
			return err
		}
		w.offerSF(index, int64(msg.Iter), sf)
		return nil
	default:
		return fmt.Errorf("train: unexpected message type %d", msg.Type)
	}
}

// serverPush feeds one update into the local shard; when the round
// completes, the fresh parameters broadcast to every worker (the KV
// store's count-based Send). For 1-bit keys the broadcast itself is
// quantized against the workers' view, with the server carrying the
// second residual (CNTK's double-sided quantization).
func (w *worker) serverPush(index, iter int, vals []float32) error {
	key := fmt.Sprintf("p%d", index)
	fresh, ready, err := w.shard.PushRound(key, iter, vals)
	if err != nil {
		return err
	}
	if !ready {
		return nil
	}
	if bq, ok := w.bcastQuant[index]; ok {
		view := w.workerView[index]
		delta := tensor.NewMatrix(1, len(fresh))
		for i, v := range fresh {
			delta.Data[i] = v - view[i]
		}
		// Reshape the residual state: the quantizer was created with the
		// parameter's true shape, so wrap delta accordingly.
		rows := bq.Residual().Rows
		cols := bq.Residual().Cols
		q := bq.Quantize(tensor.FromSlice(rows, cols, delta.Data))
		rec := q.Dequantize()
		for i := range view {
			view[i] += rec.Data[i]
		}
		payload := tensor.AppendQuantized(nil, q)
		for p := 0; p < w.n; p++ {
			if err := w.mesh.Send(p, transport.Message{
				Type:    transport.MsgQuantBcast,
				Layer:   int32(index),
				Iter:    int32(iter),
				Payload: payload,
			}); err != nil {
				return err
			}
		}
		return nil
	}
	payload := tensor.AppendFloat32s(nil, fresh)
	for p := 0; p < w.n; p++ {
		if err := w.mesh.Send(p, transport.Message{
			Type:    transport.MsgBcast,
			Layer:   int32(index),
			Iter:    int32(iter),
			Payload: payload,
		}); err != nil {
			return err
		}
	}
	return nil
}
