package train

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/nn/autodiff"
	"repro/internal/tensor"
)

func mlpBuilder(in int, hidden []int, classes int) func(rng *rand.Rand) *autodiff.Network {
	return func(rng *rand.Rand) *autodiff.Network {
		return autodiff.MLPNet(in, hidden, classes, rng)
	}
}

func smallData(seed int64, n int) *data.Dataset {
	return data.Synthetic(seed, n, 4, 1, 4, 4, 0.3) // 16-dim inputs, 4 classes
}

// singleWorkerReference trains one replica on the union of all workers'
// batches (same order), which synchronous data parallelism must equal.
func singleWorkerReference(t *testing.T, cfg Config) *autodiff.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := cfg.BuildNet(rng)
	shards := make([]*data.Dataset, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		shards[w] = cfg.TrainSet.Shard(w, cfg.Workers)
	}
	for iter := 0; iter < cfg.Iters; iter++ {
		bigX := tensor.NewMatrix(cfg.Workers*cfg.Batch, cfg.TrainSet.X.Cols)
		bigL := make([]int, cfg.Workers*cfg.Batch)
		for w := 0; w < cfg.Workers; w++ {
			x, labels := shards[w].Batch(iter*cfg.Batch, cfg.Batch)
			for i := 0; i < cfg.Batch; i++ {
				copy(bigX.Row(w*cfg.Batch+i), x.Row(i))
				bigL[w*cfg.Batch+i] = labels[i]
			}
		}
		net.ZeroGrads()
		net.LossAndGrad(bigX, bigL)
		net.SGDStep(cfg.LR)
	}
	return net
}

func maxParamDiff(a, b *autodiff.Network) float64 {
	pa, pb := a.Params(), b.Params()
	worst := 0.0
	for i := range pa {
		for j := range pa[i].Data {
			d := math.Abs(float64(pa[i].Data[j] - pb[i].Data[j]))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// THE equivalence theorem of synchronous data parallelism: P workers
// with per-worker batch K synchronized through the PS must produce the
// same parameters as one worker with batch P·K. This validates the whole
// push/aggregate/broadcast protocol end to end with real gradients.
func TestPSEquivalentToLargeBatchSGD(t *testing.T) {
	cfg := Config{
		Workers: 4, Iters: 10, Batch: 8, LR: 0.05, Mode: PSOnly, Seed: 11,
		BuildNet: mlpBuilder(16, []int{12}, 4),
		TrainSet: smallData(100, 256),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := singleWorkerReference(t, cfg)
	if d := maxParamDiff(res.Final, ref); d > 1e-3 {
		t.Fatalf("PS-distributed differs from large-batch SGD by %g", d)
	}
}

// The same equivalence must hold when FC weights travel as sufficient
// factors: SFB is mathematically exact, not approximate.
func TestSFBEquivalentToLargeBatchSGD(t *testing.T) {
	// Batch 2 with a 32-wide hidden layer makes Algorithm 1 pick SFB for
	// the hidden FC weights (2K(P-1)(M+N)=576 < 2MN(2P-2)/P=1536).
	cfg := Config{
		Workers: 4, Iters: 10, Batch: 2, LR: 0.05, Mode: Hybrid, Seed: 13,
		BuildNet: mlpBuilder(16, []int{32}, 4),
		TrainSet: smallData(101, 256),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := singleWorkerReference(t, cfg)
	if d := maxParamDiff(res.Final, ref); d > 1e-3 {
		t.Fatalf("SFB-distributed differs from large-batch SGD by %g", d)
	}
}

// With a small batch and a 12×16-ish FC layer, Algorithm 1 must actually
// route the FC weights through SFB in Hybrid mode (otherwise the
// previous test proves nothing about SFB).
func TestHybridActuallyUsesSFB(t *testing.T) {
	cfg := Config{Workers: 4, Batch: 2, Mode: Hybrid, BuildNet: mlpBuilder(16, []int{32}, 4)}
	rng := rand.New(rand.NewSource(1))
	net := cfg.BuildNet(rng)
	plans, err := buildPlans(cfg, net, cfg.Workers)
	if err != nil {
		t.Fatal(err)
	}
	sfbCount := 0
	for _, plan := range plans {
		if plan.Route == comm.RouteSFB {
			if plan.SF == nil {
				t.Fatalf("param %d: SFB route without SF extractor", plan.Index)
			}
			sfbCount++
		}
	}
	if sfbCount < 1 {
		t.Fatalf("%d FC weight tensors on SFB, want ≥1", sfbCount)
	}
}

// All replicas must agree bitwise at every barrier (BSP invariant) — we
// check final agreement across worker count and modes.
func TestReplicasConverge(t *testing.T) {
	for _, mode := range []SyncMode{PSOnly, Hybrid} {
		for _, workers := range []int{2, 3, 5} {
			cfg := Config{
				Workers: workers, Iters: 6, Batch: 4, LR: 0.05, Mode: mode, Seed: 17,
				BuildNet: mlpBuilder(16, []int{8}, 4),
				TrainSet: smallData(102, 120),
			}
			if _, err := Run(cfg); err != nil {
				t.Fatalf("mode=%v workers=%d: %v", mode, workers, err)
			}
		}
	}
}

// Distributed training must actually learn: loss decreases and test
// error beats chance by a wide margin.
func TestDistributedTrainingLearns(t *testing.T) {
	train, test := smallData(103, 640).Split(512)
	cfg := Config{
		Workers: 4, Iters: 60, Batch: 8, LR: 0.1, Mode: Hybrid, Seed: 19,
		BuildNet: mlpBuilder(16, []int{24}, 4),
		TrainSet: train, TestSet: test, EvalEvery: 20,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Curve[0].TrainLoss
	last := res.Curve[len(res.Curve)-1].TrainLoss
	if last > first*0.5 {
		t.Fatalf("loss %0.3f → %0.3f: distributed training failed to learn", first, last)
	}
	var finalErr float64 = 1
	for _, p := range res.Curve {
		if p.TestErr >= 0 {
			finalErr = p.TestErr
		}
	}
	if finalErr > 0.4 { // chance = 0.75
		t.Fatalf("test error %.2f after training", finalErr)
	}
}

// 1-bit training runs end-to-end and converges more slowly (or at best
// equally) per iteration than exact sync on the same data — the Fig. 11
// contrast.
func TestOneBitConvergesSlower(t *testing.T) {
	train := smallData(105, 512)
	mk := func(mode SyncMode, seed int64) float64 {
		cfg := Config{
			Workers: 4, Iters: 40, Batch: 8, LR: 0.1, Mode: mode, Seed: seed,
			BuildNet: mlpBuilder(16, []int{24}, 4),
			TrainSet: train,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Mean loss of the last 10 iterations.
		sum := 0.0
		for _, p := range res.Curve[len(res.Curve)-10:] {
			sum += p.TrainLoss
		}
		return sum / 10
	}
	exact := mk(Hybrid, 23)
	onebit := mk(OneBit, 23)
	if onebit < exact*0.8 {
		t.Fatalf("1-bit (%.4f) should not out-converge exact sync (%.4f)", onebit, exact)
	}
}

// Convolutional path: the full CIFAR-quick-style CNN trains
// data-parallel without protocol errors.
func TestConvNetDistributed(t *testing.T) {
	train := data.Synthetic(200, 128, 4, 3, 8, 8, 0.3)
	cfg := Config{
		Workers: 2, Iters: 4, Batch: 4, LR: 0.05, Mode: Hybrid, Seed: 29,
		BuildNet: func(rng *rand.Rand) *autodiff.Network {
			net, _, _, _ := autodiff.CIFARQuickNet(4, 4, rng)
			return net
		},
		TrainSet: train,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := singleWorkerReference(t, cfg)
	if d := maxParamDiff(res.Final, ref); d > 5e-3 {
		t.Fatalf("conv distributed differs from reference by %g", d)
	}
}

func TestSyncModeString(t *testing.T) {
	if PSOnly.String() != "PS" || Hybrid.String() != "Hybrid" || OneBit.String() != "1bit" {
		t.Fatal("mode names wrong")
	}
	if SyncMode(9).String() == "" {
		t.Fatal("unknown mode must render")
	}
}

// Bounded staleness (the paper's stated consistency extension): SSP
// training completes without protocol errors and still learns; round
// interleaving on the KV store is handled by iteration-tagged rounds.
func TestSSPTrainingLearns(t *testing.T) {
	for _, staleness := range []int{1, 3} {
		train := smallData(300, 512)
		cfg := Config{
			Workers: 4, Iters: 50, Batch: 8, LR: 0.1, Mode: PSOnly, Seed: 31,
			Staleness: staleness,
			BuildNet:  mlpBuilder(16, []int{24}, 4),
			TrainSet:  train,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("staleness=%d: %v", staleness, err)
		}
		first := res.Curve[0].TrainLoss
		sum := 0.0
		for _, p := range res.Curve[len(res.Curve)-10:] {
			sum += p.TrainLoss
		}
		last := sum / 10
		if last > first*0.6 {
			t.Fatalf("staleness=%d: loss %0.3f → %0.3f, did not learn", staleness, first, last)
		}
	}
}

// SSP with hybrid routing (SFB layers) also drains cleanly.
func TestSSPWithSFB(t *testing.T) {
	cfg := Config{
		Workers: 3, Iters: 12, Batch: 2, LR: 0.05, Mode: Hybrid, Seed: 33,
		Staleness: 2,
		BuildNet:  mlpBuilder(16, []int{32}, 4),
		TrainSet:  smallData(301, 120),
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

// Staleness 0 must preserve the BSP equivalence theorem exactly.
func TestSSPZeroEqualsBSP(t *testing.T) {
	cfg := Config{
		Workers: 4, Iters: 8, Batch: 8, LR: 0.05, Mode: PSOnly, Seed: 35,
		Staleness: 0,
		BuildNet:  mlpBuilder(16, []int{12}, 4),
		TrainSet:  smallData(302, 256),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := singleWorkerReference(t, cfg)
	if d := maxParamDiff(res.Final, ref); d > 1e-3 {
		t.Fatalf("SSP(0) differs from large-batch SGD by %g", d)
	}
}
