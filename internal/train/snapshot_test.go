package train

import (
	"errors"
	"testing"
	"time"
)

// TestSnapshotHookFiresAtBarriers pins the capture contract: events
// fire only on the SnapshotRank worker, every SnapshotEvery iterations
// plus the final drain, and the drain capture's bytes equal the final
// replica.
func TestSnapshotHookFiresAtBarriers(t *testing.T) {
	type capture struct {
		iter, epoch int
		params      [][]float32
	}
	var captures []capture
	cfg := Config{
		Workers: 3, Iters: 12, Batch: 4, LR: 0.05, Mode: PSOnly, Seed: 17,
		BuildNet:      mlpBuilder(16, []int{12}, 4),
		TrainSet:      smallData(100, 240),
		SnapshotEvery: 4,
		SnapshotRank:  1,
		OnSnapshot: func(ev SnapshotEvent) {
			c := capture{iter: ev.Iter, epoch: ev.Epoch}
			for _, p := range ev.Params {
				c.params = append(c.params, append([]float32(nil), p.Data...))
			}
			captures = append(captures, c)
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Barriers at 4 and 8, plus the drain capture at 12.
	if len(captures) != 3 {
		t.Fatalf("got %d captures, want 3", len(captures))
	}
	for i, want := range []int{4, 8, 12} {
		if captures[i].iter != want || captures[i].epoch != 0 {
			t.Fatalf("capture %d at (iter %d, epoch %d), want (%d, 0)", i, captures[i].iter, captures[i].epoch, want)
		}
	}
	// SnapshotRank 1 captured, but Run returns worker 0's result — BSP
	// makes their replicas identical, so the drain capture must match.
	final := captures[2]
	for i, p := range res.Final.Params() {
		for j, v := range p.Data {
			if final.params[i][j] != v {
				t.Fatalf("drain capture tensor %d[%d] = %g, final replica has %g", i, j, final.params[i][j], v)
			}
		}
	}
}

// TestStopChannelAbortsRun demands a closed Stop channel surfaces
// ErrCanceled instead of hanging the cluster.
func TestStopChannelAbortsRun(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	cfg := Config{
		Workers: 2, Iters: 200, Batch: 4, LR: 0.05, Mode: PSOnly, Seed: 3,
		BuildNet: mlpBuilder(16, []int{12}, 4),
		TrainSet: smallData(100, 240),
		Stop:     stop,
	}
	done := make(chan error, 1)
	go func() {
		_, err := Run(cfg)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("aborted run returned %v, want ErrCanceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled run did not return")
	}
}
