package train

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/transport"
)

// paramsIdentical asserts two replicas agree bit-for-bit — the
// membership protocol's consistency guarantee is byte-identity, not
// approximate agreement.
func paramsIdentical(t *testing.T, label string, a, b *Result) {
	t.Helper()
	pa, pb := a.Final.Params(), b.Final.Params()
	if len(pa) != len(pb) {
		t.Fatalf("%s: %d vs %d params", label, len(pa), len(pb))
	}
	for i := range pa {
		for j := range pa[i].Data {
			if math.Float32bits(pa[i].Data[j]) != math.Float32bits(pb[i].Data[j]) {
				t.Fatalf("%s: param %d elem %d: %g vs %g", label, i, j, pa[i].Data[j], pb[i].Data[j])
			}
		}
	}
}

// TestElasticCrashContinuesAndMatchesReference kills one of three
// workers mid-training and checks the acceptance property end to end at
// the train layer: the survivors re-form at a membership barrier,
// finish byte-identical to each other, and match a two-worker reference
// run continued non-elastically from the snapshot the barrier adopted.
func TestElasticCrashContinuesAndMatchesReference(t *testing.T) {
	const n, iters, killAt = 3, 12, 4
	cl := transport.NewElasticChanCluster(n)
	base := Config{
		Workers: n, Iters: iters, Batch: 4, LR: 0.05, Mode: PSOnly, Seed: 21,
		Overlap: true, ChunkElems: 8,
		BuildNet:    mlpBuilder(16, []int{10}, 4),
		TrainSet:    smallData(300, 256),
		Elastic:     true,
		ViewTimeout: 20 * time.Second,
	}

	var mu sync.Mutex
	events := map[int][]ViewEvent{}
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		r := r
		cfg := base
		cfg.OnViewChange = func(ev ViewEvent) {
			mu.Lock()
			events[r] = append(events[r], ev)
			mu.Unlock()
		}
		if r == 2 {
			// Die right after launching iteration killAt: Progress fires
			// on the compute goroutine once the round's pushes are in
			// flight, so the survivors see a genuinely mid-stream crash.
			cfg.Progress = func(p Point) {
				if p.Iter == killAt {
					cl.Kill(2)
				}
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[r], errs[r] = RunWorker(cfg, cl.Endpoint(r))
		}()
	}
	wg.Wait()
	cl.Close()

	if errs[2] == nil {
		t.Fatal("killed worker finished cleanly")
	}
	for r := 0; r < 2; r++ {
		if errs[r] != nil {
			t.Fatalf("survivor %d: %v", r, errs[r])
		}
		if got := len(events[r]); got != 1 {
			t.Fatalf("survivor %d saw %d view changes, want 1", r, got)
		}
	}
	ev0, ev1 := events[0][0], events[1][0]
	wantView := cluster.View{Epoch: 1, Members: []int{0, 1}}
	if !ev0.View.Equal(wantView) || !ev1.View.Equal(wantView) {
		t.Fatalf("committed views %v / %v, want %v", ev0.View, ev1.View, wantView)
	}
	if ev0.RestartIter != ev1.RestartIter {
		t.Fatalf("restart iterations diverge: %d vs %d", ev0.RestartIter, ev1.RestartIter)
	}
	for i := range ev0.Params {
		for j := range ev0.Params[i] {
			if math.Float32bits(ev0.Params[i][j]) != math.Float32bits(ev1.Params[i][j]) {
				t.Fatalf("adopted snapshots diverge at param %d elem %d", i, j)
			}
		}
	}
	paramsIdentical(t, "survivors", results[0], results[1])

	// Reference: a fixed-size two-worker run continued from the adopted
	// snapshot at the restart iteration must land on the same bytes —
	// the fenced-out rounds were skipped on both sides.
	ref := base
	ref.Workers = 2
	ref.Elastic = false
	ref.ViewTimeout = 0
	ref.StartIter = ev0.RestartIter
	ref.InitialParams = ev0.Params
	refRes, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	paramsIdentical(t, "survivor vs reference", results[0], refRes)
}

// TestElasticGracefulLeave has one worker depart voluntarily at a fixed
// iteration: it gets Left back, the survivors re-form and finish
// byte-identical.
func TestElasticGracefulLeave(t *testing.T) {
	const n, iters = 3, 10
	cl := transport.NewElasticChanCluster(n)
	base := Config{
		Workers: n, Iters: iters, Batch: 4, LR: 0.05, Mode: Hybrid, Seed: 33,
		Overlap:     true,
		BuildNet:    mlpBuilder(16, []int{10}, 4),
		TrainSet:    smallData(301, 256),
		Elastic:     true,
		ViewTimeout: 20 * time.Second,
	}
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		r := r
		cfg := base
		if r == 2 {
			cfg.LeaveAt = 5
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[r], errs[r] = RunWorker(cfg, cl.Endpoint(r))
		}()
	}
	wg.Wait()
	cl.Close()
	for r := 0; r < n; r++ {
		if errs[r] != nil {
			t.Fatalf("worker %d: %v", r, errs[r])
		}
	}
	if !results[2].Left {
		t.Fatal("leaver's result not marked Left")
	}
	if results[0].Left || results[1].Left {
		t.Fatal("survivor marked Left")
	}
	paramsIdentical(t, "survivors", results[0], results[1])
}

// TestElasticJoinExpandsCluster starts two workers on a capacity-three
// mesh, attaches a third mid-training, and checks all three finish with
// byte-identical replicas.
func TestElasticJoinExpandsCluster(t *testing.T) {
	const capacity, iters = 3, 12
	cl := transport.NewElasticChanCluster(capacity)
	initial := cluster.View{Epoch: 0, Members: []int{0, 1}}
	base := Config{
		Workers: capacity, Iters: iters, Batch: 4, LR: 0.05, Mode: PSOnly, Seed: 44,
		Overlap: true, ChunkElems: 8,
		BuildNet:    mlpBuilder(16, []int{10}, 4),
		TrainSet:    smallData(302, 256),
		Elastic:     true,
		ViewTimeout: 20 * time.Second,
	}

	started := make(chan struct{})
	var once sync.Once
	results := make([]*Result, capacity)
	errs := make([]error, capacity)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		r := r
		cfg := base
		cfg.View = initial.Clone()
		if r == 0 {
			// Admit the joiner only once training is demonstrably under
			// way, so the join lands mid-stream.
			cfg.Progress = func(p Point) {
				if p.Iter >= 3 {
					once.Do(func() { close(started) })
				}
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[r], errs[r] = RunWorker(cfg, cl.Endpoint(r))
		}()
	}
	select {
	case <-started:
	case <-time.After(20 * time.Second):
		t.Fatal("initial members never made progress")
	}
	joiner := base
	joiner.View = initial.Clone()
	joiner.Joining = true
	mesh := cl.Join(2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[2], errs[2] = RunWorker(joiner, mesh)
	}()
	wg.Wait()
	cl.Close()

	for r := 0; r < capacity; r++ {
		if errs[r] != nil {
			t.Fatalf("worker %d: %v", r, errs[r])
		}
	}
	paramsIdentical(t, "member 0 vs 1", results[0], results[1])
	paramsIdentical(t, "member 0 vs joiner", results[0], results[2])
}

// TestElasticConfigValidation pins the config surface: the elastic
// fields are rejected in combinations the protocol cannot honor.
func TestElasticConfigValidation(t *testing.T) {
	base := Config{
		Workers: 2, Iters: 4, Batch: 2, LR: 0.1, Mode: PSOnly, Seed: 1,
		BuildNet: mlpBuilder(16, []int{4}, 4),
		TrainSet: smallData(9, 64),
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"elastic with replan", func(c *Config) { c.Elastic = true; c.Replan.Every = 2 }},
		{"joining without elastic", func(c *Config) { c.Joining = true }},
		{"view without elastic", func(c *Config) { c.View = cluster.Initial(2) }},
		{"leave without elastic", func(c *Config) { c.LeaveAt = 2 }},
		{"negative start", func(c *Config) { c.StartIter = -1 }},
		{"start past end", func(c *Config) { c.StartIter = 4 }},
		{"rank outside view", func(c *Config) { c.Elastic = true; c.View = cluster.View{Members: []int{1}} }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
