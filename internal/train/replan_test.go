package train

import (
	"math"
	"testing"

	"repro/internal/metrics"
)

// A run seeded with a deliberately wrong bandwidth estimate must
// correct itself at the first replan barrier: the MLP's 32×16 FC weight
// starts on SFB (the byte term dominates at the claimed 100 KB/s), the
// in-process mesh then measures orders of magnitude more than that, and
// Algorithm 1 flips the tensor to the PS — while the training
// trajectory stays within 1e-6 of the identical run with replanning
// disabled (route changes re-associate float32 sums, nothing more) and
// the replicas keep agreeing (train.Run's internal BSP checks).
func TestReplanCorrectsWrongBandwidth(t *testing.T) {
	base := Config{
		Workers: 4, Iters: 16, Batch: 2, LR: 0.05, Mode: Hybrid, Seed: 13,
		BuildNet:  mlpBuilder(16, []int{32}, 4),
		TrainSet:  smallData(101, 256),
		Bandwidth: 100e3, // claims 100 KB/s; the in-process mesh is far faster
	}

	static := base
	static.Metrics = metrics.NewComm()
	staticRes, err := Run(static)
	if err != nil {
		t.Fatal(err)
	}
	staticSnap := static.Metrics.Snapshot()
	if len(staticSnap.ReplanEvents) != 0 {
		t.Fatalf("static run logged replan events: %+v", staticSnap.ReplanEvents)
	}
	sfbAtStart := false
	for _, p := range staticSnap.Params {
		if p.Route == "SFB" {
			sfbAtStart = true
		}
	}
	if !sfbAtStart {
		t.Fatal("the claimed 100 KB/s should put the FC weight on SFB initially")
	}

	replanned := base
	replanned.Replan = ReplanSpec{Every: 8, Alpha: 1}
	replanned.Metrics = metrics.NewComm()
	replannedRes, err := Run(replanned)
	if err != nil {
		t.Fatal(err)
	}
	snap := replanned.Metrics.Snapshot()
	if len(snap.ReplanEvents) < 1 {
		t.Fatalf("no route flipped despite a 100 KB/s estimate on an in-process mesh\nestimate: %g B/s", snap.BWEstimateBPS)
	}
	for _, e := range snap.ReplanEvents {
		if e.From != "SFB" || e.To != "PS" {
			t.Fatalf("unexpected flip direction %+v (measured bandwidth should favor the PS)", e)
		}
		if e.Iter != 8 {
			t.Fatalf("flip at iteration %d, want the epoch barrier 8: %+v", e.Iter, e)
		}
	}
	if snap.BWEstimateBPS <= base.Bandwidth {
		t.Fatalf("bw_estimate_bps %g did not rise above the wrong initial %g", snap.BWEstimateBPS, base.Bandwidth)
	}

	// Loss parity: replanning changes which wires carry the update, not
	// the update itself.
	if len(replannedRes.Curve) != len(staticRes.Curve) {
		t.Fatalf("curve lengths differ: %d vs %d", len(replannedRes.Curve), len(staticRes.Curve))
	}
	for i := range staticRes.Curve {
		d := math.Abs(replannedRes.Curve[i].TrainLoss - staticRes.Curve[i].TrainLoss)
		if d > 1e-6 {
			t.Fatalf("iter %d: replanned loss %.12g vs static %.12g (|d|=%g > 1e-6)",
				i, replannedRes.Curve[i].TrainLoss, staticRes.Curve[i].TrainLoss, d)
		}
	}
	if d := maxParamDiff(replannedRes.Final, staticRes.Final); d > 1e-5 {
		t.Fatalf("final replicas differ from static plan by %g", d)
	}
}

// Replanning with SSP (staleness > 0) drains and swaps cleanly, and an
// epoch not exceeding the staleness bound is rejected up front.
func TestReplanWithStaleness(t *testing.T) {
	cfg := Config{
		Workers: 3, Iters: 12, Batch: 2, LR: 0.05, Mode: Hybrid, Seed: 33,
		Staleness: 1,
		BuildNet:  mlpBuilder(16, []int{32}, 4),
		TrainSet:  smallData(301, 120),
		Bandwidth: 100e3,
		Replan:    ReplanSpec{Every: 4, Alpha: 1},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	bad := cfg
	bad.Replan.Every = 1 // == staleness + 0: the arming could be outrun
	if _, err := Run(bad); err == nil {
		t.Fatal("replan interval <= staleness must be rejected")
	}
}

// A replan-enabled run with no Metrics configured still measures (the
// worker attaches a private registry) and still trains.
func TestReplanWithoutExplicitMetrics(t *testing.T) {
	cfg := Config{
		Workers: 3, Iters: 8, Batch: 2, LR: 0.05, Mode: Hybrid, Seed: 7,
		BuildNet:  mlpBuilder(16, []int{32}, 4),
		TrainSet:  smallData(102, 120),
		Bandwidth: 100e3,
		Replan:    ReplanSpec{Every: 4, Alpha: 1},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

// Replanning must work without an initial Bandwidth claim: the first
// measured observation makes the planner bandwidth-aware (the default
// frame overhead applies because replanning is on), so the byte-rule
// initial SFB route still flips to PS once the in-process wire rate is
// measured.
func TestReplanWithoutInitialBandwidth(t *testing.T) {
	cfg := Config{
		Workers: 4, Iters: 16, Batch: 2, LR: 0.05, Mode: Hybrid, Seed: 13,
		BuildNet: mlpBuilder(16, []int{32}, 4),
		TrainSet: smallData(101, 256),
		Replan:   ReplanSpec{Every: 8, Alpha: 1},
	}
	cfg.Metrics = metrics.NewComm()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	snap := cfg.Metrics.Snapshot()
	if len(snap.ReplanEvents) < 1 {
		t.Fatalf("no route flipped without an initial bandwidth claim (estimate %g B/s)", snap.BWEstimateBPS)
	}
	for _, e := range snap.ReplanEvents {
		if e.From != "SFB" || e.To != "PS" {
			t.Fatalf("unexpected flip %+v", e)
		}
	}
}
