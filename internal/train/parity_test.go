package train

import (
	"math"
	"testing"
)

// seedGoldenLosses are the per-iteration worker-0 training losses of
// the pre-comm.Router trainer (the strategy methods formerly inlined on
// train.worker) for the exact config in goldenConfig, recorded from the
// seed code path (bit-identical across 5 runs). The refactored runtime
// must reproduce them: the wire protocol moved, the math must not.
var seedGoldenLosses = []float64{
	0.68236235875889195,
	0.57934840495492312,
	0.57600886197666257,
	0.68516428137665719,
	0.55046955908859407,
	0.65806254364408145,
	0.56772462287965519,
	0.70695736401464293,
	0.75612182025004415,
	0.63116949986336246,
}

func goldenConfig() Config {
	return Config{
		Workers: 4, Iters: 10, Batch: 8, LR: 0.05, Mode: PSOnly, Seed: 11,
		BuildNet: mlpBuilder(16, []int{12}, 4),
		TrainSet: smallData(100, 256),
	}
}

func assertGoldenLosses(t *testing.T, cfg Config, tol float64) {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) != len(seedGoldenLosses) {
		t.Fatalf("curve has %d points, want %d", len(res.Curve), len(seedGoldenLosses))
	}
	for i, p := range res.Curve {
		if d := math.Abs(p.TrainLoss - seedGoldenLosses[i]); d > tol {
			t.Fatalf("iter %d: loss %.17g differs from seed golden %.17g by %g (tol %g)",
				i, p.TrainLoss, seedGoldenLosses[i], d, tol)
		}
	}
}

// The headline parity guarantee of the comm extraction: PS mode with
// overlap disabled reproduces the old code path's per-iteration losses
// within 1e-6.
func TestRouterParityWithSeedPSPath(t *testing.T) {
	assertGoldenLosses(t, goldenConfig(), 1e-6)
}

// Chunking must not change the math at all — each element is
// accumulated and folded identically whichever chunk carries it — so
// chunked serialized runs hold the same parity bound.
func TestRouterParityChunked(t *testing.T) {
	cfg := goldenConfig()
	cfg.ChunkElems = 7 // deliberately misaligned with the 12×16 tensors
	assertGoldenLosses(t, cfg, 1e-6)
}

// Overlapped chunked pushes reorder wire traffic but never the
// per-element arithmetic of a BSP round, so the parity bound survives
// the send pool too.
func TestRouterParityOverlapped(t *testing.T) {
	cfg := goldenConfig()
	cfg.Overlap = true
	cfg.ChunkElems = 16
	assertGoldenLosses(t, cfg, 1e-6)
}

// Overlap and chunking must preserve the large-batch equivalence
// theorem across modes (the end-to-end correctness check for the
// overlapped runtime, not just the loss curve).
func TestOverlapEquivalentToLargeBatchSGD(t *testing.T) {
	for _, mode := range []SyncMode{PSOnly, Hybrid} {
		cfg := Config{
			Workers: 4, Iters: 10, Batch: 8, LR: 0.05, Mode: mode, Seed: 11,
			Overlap: true, ChunkElems: 8,
			BuildNet: mlpBuilder(16, []int{12}, 4),
			TrainSet: smallData(100, 256),
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("mode=%v: %v", mode, err)
		}
		ref := singleWorkerReference(t, cfg)
		if d := maxParamDiff(res.Final, ref); d > 1e-3 {
			t.Fatalf("mode=%v: overlapped distributed differs from large-batch SGD by %g", mode, d)
		}
	}
}

// Overlapped SSP training (pool + bounded staleness) still drains
// cleanly and learns — the round-interleaving case the striped pool's
// per-chunk FIFO ordering exists for.
func TestOverlapSSPLearns(t *testing.T) {
	train := smallData(300, 512)
	cfg := Config{
		Workers: 4, Iters: 50, Batch: 8, LR: 0.1, Mode: PSOnly, Seed: 31,
		Staleness: 2, Overlap: true, ChunkElems: 16,
		BuildNet: mlpBuilder(16, []int{24}, 4),
		TrainSet: train,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Curve[0].TrainLoss
	sum := 0.0
	for _, p := range res.Curve[len(res.Curve)-10:] {
		sum += p.TrainLoss
	}
	if last := sum / 10; last > first*0.6 {
		t.Fatalf("loss %0.3f → %0.3f under overlapped SSP, did not learn", first, last)
	}
}

// OneBit mode through the router matches its seed behavior closely
// enough to train (route construction, double-sided quantization, and
// residual bookkeeping all moved to comm intact).
func TestOverlapOneBitRuns(t *testing.T) {
	cfg := Config{
		Workers: 4, Iters: 8, Batch: 8, LR: 0.05, Mode: OneBit, Seed: 23,
		Overlap:  true,
		BuildNet: mlpBuilder(16, []int{24}, 4),
		TrainSet: smallData(105, 256),
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}
