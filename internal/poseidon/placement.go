package poseidon

import (
	"fmt"

	"repro/internal/nn"
)

// DefaultChunkBytes is the paper's KV-pair size: "Poseidon sets the size
// of a KV pair to a fixed small size (e.g., 2MB), so as to partition and
// distribute model parameters to server nodes as equally as possible."
const DefaultChunkBytes = 2 << 20

// Chunk is one KV pair: a contiguous span of a layer's parameters
// assigned to a PS shard.
type Chunk struct {
	Layer  int   // index into the model's Layers
	Index  int   // chunk ordinal within the layer
	Bytes  int64 // payload size (float32 parameters)
	Server int   // owning PS shard
}

// Key returns a stable identifier for the chunk.
func (c Chunk) Key() string { return fmt.Sprintf("L%d/C%d", c.Layer, c.Index) }

// PlacementPolicy selects how parameters map to PS shards.
type PlacementPolicy int

const (
	// FineGrained is Poseidon's placement: layers are split into
	// fixed-size KV pairs dealt round-robin across shards, so every
	// shard carries an almost equal share of every big layer.
	FineGrained PlacementPolicy = iota
	// CoarsePerTensor is distributed TensorFlow's placement, as
	// characterized in Section 5.1: each whole tensor is assigned to a
	// single shard, so a big FC tensor concentrates its traffic on one
	// node.
	CoarsePerTensor
)

// Placement maps every parameterized layer of a model onto PS shards.
type Placement struct {
	Policy     PlacementPolicy
	ChunkBytes int64
	Servers    int
	// ByLayer[i] lists the chunks of model layer i (nil for layers
	// without parameters).
	ByLayer [][]Chunk
	// ServerBytes[s] is the total parameter bytes hosted by shard s.
	ServerBytes []int64
}

// NewPlacement partitions m's parameters across servers shards.
func NewPlacement(m *nn.Model, servers int, policy PlacementPolicy, chunkBytes int64) *Placement {
	if servers <= 0 {
		panic("poseidon: need at least one server")
	}
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	p := &Placement{
		Policy:      policy,
		ChunkBytes:  chunkBytes,
		Servers:     servers,
		ByLayer:     make([][]Chunk, len(m.Layers)),
		ServerBytes: make([]int64, servers),
	}
	next := 0 // round-robin cursor
	for i := range m.Layers {
		bytes := m.Layers[i].ParamBytes()
		if bytes == 0 {
			continue
		}
		switch policy {
		case CoarsePerTensor:
			c := Chunk{Layer: i, Index: 0, Bytes: bytes, Server: next % servers}
			next++
			p.ByLayer[i] = []Chunk{c}
			p.ServerBytes[c.Server] += bytes
		default:
			var chunks []Chunk
			for off := int64(0); off < bytes; off += chunkBytes {
				sz := chunkBytes
				if bytes-off < sz {
					sz = bytes - off
				}
				c := Chunk{Layer: i, Index: len(chunks), Bytes: sz, Server: next % servers}
				next++
				chunks = append(chunks, c)
				p.ServerBytes[c.Server] += sz
			}
			p.ByLayer[i] = chunks
		}
	}
	return p
}

// Imbalance returns max(ServerBytes)/mean(ServerBytes), the server
// load-imbalance factor (1.0 = perfectly balanced). TF's coarse
// placement yields large values on FC-heavy models; Poseidon's
// fine-grained placement stays near 1.
func (p *Placement) Imbalance() float64 {
	var sum, max int64
	for _, b := range p.ServerBytes {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(p.ServerBytes))
	return float64(max) / mean
}

// NumChunks returns the total KV-pair count.
func (p *Placement) NumChunks() int {
	n := 0
	for _, cs := range p.ByLayer {
		n += len(cs)
	}
	return n
}
