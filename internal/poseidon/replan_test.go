package poseidon

import (
	"testing"

	"repro/internal/comm"
)

// replanPlanner binds a 3-worker hybrid planner to one conv tensor and
// one FC tensor whose PS-vs-SFB crossover sits at a known bandwidth,
// so the tests can push the estimate across it.
//
// fc.W is 32×64 at K=8, P=3. Per-worker egress: PS moves 4MN = 8192 B
// in 1 push frame, SFB moves 4K(P−1)(M+N) = 6144 B in P−1 = 2 factor
// frames. With the default 1 ms frame overhead the schemes tie at
// bw* = (8192−6144)/10⁻³ ≈ 2.05 MB/s; under 10% hysteresis a PS route
// flips to SFB below ≈1.12 MB/s and an SFB route flips back to PS
// above ≈3.33 MB/s.
func replanPlanner(bw float64) (*Planner, []TensorSpec) {
	p := NewPlanner(PolicyHybrid, ClusterShape{Workers: 3, Servers: 3, Batch: 8})
	p.BytesPerSec = bw
	p.FrameOverhead = DefaultFrameOverheadSec
	specs := []TensorSpec{
		{Index: 0, Name: "conv.W", Rows: 100, Cols: 25},
		{Index: 1, Name: "fc.W", Rows: 32, Cols: 64, SFCapable: true},
	}
	return p, specs
}

func routesOf(t *testing.T, p *Planner, specs []TensorSpec) []comm.Route {
	t.Helper()
	plans, err := p.ParamPlans(specs)
	if err != nil {
		t.Fatal(err)
	}
	routes := make([]comm.Route, len(plans))
	for i, plan := range plans {
		routes[i] = plan.Route
	}
	return routes
}

// Replan's flip rule, table-driven: a halved bandwidth flips the FC
// tensor PS→SFB, estimates inside the hysteresis band hold the plan
// steady, and recovering bandwidth flips it back.
func TestPlannerReplanFlipsAndHolds(t *testing.T) {
	cases := []struct {
		name    string
		initial float64                // configured -bw estimate
		alpha   float64                // EWMA weight (1 = trust measurement fully)
		obs     []BandwidthObservation // folded in order
		want    Scheme                 // fc.W route after the last Replan
		flips   int                    // observations that returned a new plan
	}{
		{
			name:    "bandwidth halves, fc flips PS to SFB",
			initial: 2.1e6, alpha: 1,
			obs:   []BandwidthObservation{{BytesPerSec: 1.05e6}},
			want:  SFB,
			flips: 1,
		},
		{
			name:    "estimate wobbling within ±10% holds the route",
			initial: 2.1e6, alpha: 1,
			obs: []BandwidthObservation{
				{BytesPerSec: 1.9e6}, {BytesPerSec: 2.3e6}, {BytesPerSec: 2.0e6},
			},
			want:  PS,
			flips: 0,
		},
		{
			name:    "hysteresis holds just past the crossover",
			initial: 2.1e6, alpha: 1,
			// 1.5 MB/s is below the ~2.05 MB/s tie, but SFB's advantage
			// there is inside the 10% hysteresis margin.
			obs:   []BandwidthObservation{{BytesPerSec: 1.5e6}},
			want:  PS,
			flips: 0,
		},
		{
			name: "recovered bandwidth flips SFB back to PS",
			// 1.2 MB/s sits below fc's ~2.05 MB/s PS/SFB tie but above
			// the conv tensor's ~1.11 MB/s PS/ring crossover, so the
			// initial plan is the classic [PS, SFB] split.
			initial: 1.2e6, alpha: 1,
			obs:   []BandwidthObservation{{BytesPerSec: 40e6}},
			want:  PS,
			flips: 1,
		},
		{
			name:    "EWMA damps a single outlier",
			initial: 2.1e6, alpha: 0.5,
			// One noisy 0.3 MB/s sample only drags the estimate to
			// 1.2 MB/s, still above the ~1.12 MB/s flip threshold.
			obs:   []BandwidthObservation{{BytesPerSec: 0.3e6}},
			want:  PS,
			flips: 0,
		},
		{
			name:    "idle windows are discarded",
			initial: 2.1e6, alpha: 1,
			obs:   []BandwidthObservation{{BytesPerSec: 0}, {BytesPerSec: -5}},
			want:  PS,
			flips: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, specs := replanPlanner(tc.initial)
			p.Alpha = tc.alpha
			initial := routesOf(t, p, specs)
			if initial[0] != comm.RoutePS {
				t.Fatalf("conv tensor planned %v, want PS", initial[0])
			}
			flips := 0
			var last []comm.ParamPlan
			for _, obs := range tc.obs {
				if plans := p.Replan(obs); plans != nil {
					flips++
					last = plans
				}
			}
			if flips != tc.flips {
				t.Fatalf("%d observations produced a new plan, want %d (estimate %.3g)",
					flips, tc.flips, p.BandwidthEstimate())
			}
			got := initial[1]
			if last != nil {
				got = last[1].Route
				if last[0].Route != comm.RoutePS {
					t.Fatalf("replan moved the conv tensor to %v", last[0].Route)
				}
				if len(last) != len(specs) {
					t.Fatalf("replan returned %d plans for %d specs", len(last), len(specs))
				}
			}
			want, err := tc.want.Route()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("fc.W on %v after replans, want %v (estimate %.3g B/s)",
					got, want, p.BandwidthEstimate())
			}
		})
	}
}

// Replan state machine edges: unbound planners, byte-mode planners, and
// non-hybrid policies never produce a plan; overrides stay pinned
// through any bandwidth swing; and consecutive replans apply hysteresis
// against the *current* routes, so a flipped route needs a full
// reversed margin to flip back.
func TestPlannerReplanEdges(t *testing.T) {
	// Unbound: no ParamPlans call yet.
	p, _ := replanPlanner(2.1e6)
	if plans := p.Replan(BandwidthObservation{BytesPerSec: 1e3}); plans != nil {
		t.Fatal("unbound planner replanned")
	}

	// Byte-mode: no frame overhead → the decision is bandwidth-free.
	p2, specs := replanPlanner(2.1e6)
	p2.FrameOverhead = 0
	_ = routesOf(t, p2, specs)
	if plans := p2.Replan(BandwidthObservation{BytesPerSec: 1e3}); plans != nil {
		t.Fatal("byte-mode planner replanned")
	}

	// Non-hybrid policies have nothing to adapt.
	ps := NewPlanner(PolicyPS, ClusterShape{Workers: 3, Servers: 3, Batch: 8})
	ps.BytesPerSec, ps.FrameOverhead = 2.1e6, DefaultFrameOverheadSec
	_ = routesOf(t, ps, specs)
	if plans := ps.Replan(BandwidthObservation{BytesPerSec: 1e3}); plans != nil {
		t.Fatal("PS policy replanned")
	}

	// An override survives any swing. The unpinned conv tensor is free
	// to move — at a crawling 1 KB/s link its byte term dominates and it
	// flips PS→ring — but the pinned FC route must hold.
	p3, specs3 := replanPlanner(2.1e6)
	p3.Alpha = 1
	p3.Override(1, PS)
	_ = routesOf(t, p3, specs3)
	plans3 := p3.Replan(BandwidthObservation{BytesPerSec: 1e3})
	if plans3 == nil || plans3[0].Route != comm.RouteRing {
		t.Fatalf("1 KB/s link did not flip the conv tensor to ring: %v", plans3)
	}
	if plans3[1].Route != comm.RoutePS {
		t.Fatalf("replan moved a pinned override: %v", plans3)
	}

	// Hysteresis is relative to the live route: after PS→SFB at 1 MB/s,
	// drifting back above the ~2.05 MB/s tie (but under the ~3.33 MB/s
	// reverse-flip threshold) must not flip again.
	p4, specs4 := replanPlanner(2.1e6)
	p4.Alpha = 1
	_ = routesOf(t, p4, specs4)
	if plans := p4.Replan(BandwidthObservation{BytesPerSec: 1e6}); plans == nil || plans[1].Route != comm.RouteSFB {
		t.Fatalf("1 MB/s did not flip fc.W to SFB: %v", plans)
	}
	if plans := p4.Replan(BandwidthObservation{BytesPerSec: 2.5e6}); plans != nil {
		t.Fatalf("drift just past the crossover flipped back: %v", plans)
	}

	// The EWMA estimate is what Decide now reports seconds against.
	if est := p4.BandwidthEstimate(); est != 2.5e6 {
		t.Fatalf("estimate %g, want 2.5e6 under alpha=1", est)
	}
	d := p4.Decide(specs4[0])
	if want := float64(d.WireBytes) / 2.5e6; d.Seconds != want {
		t.Fatalf("Decide seconds %g, want %g (EWMA-based)", d.Seconds, want)
	}
}

// ReplanShape re-decides every route for a new cluster shape — the
// planner half of a membership barrier. Unlike bandwidth replans the
// shape change is discontinuous, so no hysteresis applies: growing the
// worker pool makes the FC tensor's SFB cost (quadratic in P) lose to
// PS immediately, and shrinking back flips it straight to SFB again.
func TestReplanShapeRedecidesWithoutHysteresis(t *testing.T) {
	// At 1 MB/s with 3 workers fc.W plans SFB (8.1 ms vs PS's 9.2 ms).
	p, specs := replanPlanner(1e6)
	initial := routesOf(t, p, specs)
	if initial[1] != comm.RouteSFB {
		t.Fatalf("fc.W planned %v at 1 MB/s ×3 workers, want SFB", initial[1])
	}

	// Grow to 5 workers: SFB moves 4K(P−1)(M+N) = 12.3 KB in 4 frames,
	// PS still 8.2 KB in 1 — PS wins outright.
	plans, err := p.ReplanShape(ClusterShape{Workers: 5, Servers: 5, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != len(specs) {
		t.Fatalf("%d plans for %d specs", len(plans), len(specs))
	}
	if plans[1].Route != comm.RoutePS {
		t.Fatalf("fc.W on %v after growing to 5 workers, want PS", plans[1].Route)
	}
	if plans[0].Route != comm.RoutePS {
		t.Fatalf("conv tensor moved to %v", plans[0].Route)
	}
	if p.Cluster.Workers != 5 || p.Cluster.Servers != 5 {
		t.Fatalf("planner cluster not rebound: %+v", p.Cluster)
	}

	// Shrink straight back: the flip reverses with no hysteresis band,
	// unlike a bandwidth drift of the same magnitude.
	plans, err = p.ReplanShape(ClusterShape{Workers: 3, Servers: 3, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if plans[1].Route != comm.RouteSFB {
		t.Fatalf("fc.W on %v after shrinking to 3 workers, want SFB", plans[1].Route)
	}

	// A lone survivor has nobody to broadcast to: SFB is forced off.
	plans, err = p.ReplanShape(ClusterShape{Workers: 1, Servers: 1, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if plans[1].Route != comm.RoutePS {
		t.Fatalf("fc.W on %v with a single worker, want PS", plans[1].Route)
	}
}

// ReplanShape edges: an unbound planner returns nothing (the caller has
// no syncers to rebuild yet), zero Servers defaults to colocated
// PS shards on every worker, and a pinned override survives any shape.
func TestReplanShapeEdges(t *testing.T) {
	p, _ := replanPlanner(1e6)
	plans, err := p.ReplanShape(ClusterShape{Workers: 5, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if plans != nil {
		t.Fatalf("unbound planner produced plans: %v", plans)
	}
	if p.Cluster.Workers != 5 || p.Cluster.Servers != 5 {
		t.Fatalf("Servers not defaulted to Workers: %+v", p.Cluster)
	}

	p2, specs := replanPlanner(1e6)
	p2.Override(1, PS)
	_ = routesOf(t, p2, specs)
	plans, err = p2.ReplanShape(ClusterShape{Workers: 3, Servers: 3, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if plans[1].Route != comm.RoutePS {
		t.Fatalf("shape change moved a pinned override to %v", plans[1].Route)
	}
}
