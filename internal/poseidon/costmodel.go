// Package poseidon implements the paper's core contribution: the
// coordinator with its per-layer communication cost model (Table 1 and
// Algorithm 1), the hybrid PS/SFB scheme selection (HybComm), and the
// fine-grained KV-pair parameter placement that load-balances the
// parameter server.
//
// The package is shared by both planes of the reproduction: the
// discrete-event performance engine (internal/engine) consults it to
// size and route simulated messages, and the functional trainer
// (internal/train) uses the same decisions to route real tensors.
package poseidon

import (
	"fmt"

	"repro/internal/nn"
)

// Scheme is a per-layer communication method.
type Scheme int

const (
	// PS synchronizes dense gradients through sharded parameter servers.
	PS Scheme = iota
	// SFB broadcasts sufficient factors peer-to-peer (FC layers only).
	SFB
	// AdamSF pushes sufficient factors to a single server, which pulls
	// back full matrices (Project Adam's strategy; modeled as a baseline,
	// never chosen by BestScheme).
	AdamSF
	// OneBitPS pushes 1-bit quantized gradients through the PS (CNTK's
	// strategy; modeled as a baseline, never chosen by BestScheme).
	OneBitPS
	// Ring runs the bandwidth-optimal ring all-reduce: each worker
	// uploads 2·M·N·(P−1)/P values across 2(P−1) hops. Admitted by the
	// bandwidth-aware rule only — in pure byte counts it ties or beats
	// the PS on every shape, but its 2(P−1)-deep critical path loses on
	// fast links and small tensors, which is exactly the trade a byte
	// count cannot see.
	Ring
	// TreeRing composes intra-group rings (g = ⌈√P⌉ workers per group)
	// with an inter-group leader chain: ~4(√P−1) hops instead of
	// 2(P−1). A topology override for oversubscribed fabrics — the flat
	// cost model has one bandwidth number and would otherwise always
	// prefer it at scale, so it is never auto-selected.
	TreeRing
)

// String names the scheme as in the paper.
func (s Scheme) String() string {
	switch s {
	case PS:
		return "PS"
	case SFB:
		return "SFB"
	case AdamSF:
		return "Adam"
	case OneBitPS:
		return "1bit"
	case Ring:
		return "ring"
	case TreeRing:
		return "treering"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// ClusterShape is the cluster configuration the cost model depends on.
type ClusterShape struct {
	Workers int // P1
	Servers int // P2 (PS shards; colocated with workers in the paper's runs)
	Batch   int // K, per-worker batch size
}

// Table 1 of the paper: estimated number of parameters communicated to
// synchronize an M×N FC layer. All counts are per node per iteration.

// PSServerParams returns the PS cost borne by a pure server node:
// 2·P1·M·N/P2.
func PSServerParams(m, n int64, c ClusterShape) int64 {
	return 2 * int64(c.Workers) * m * n / int64(c.Servers)
}

// PSWorkerParams returns the PS cost borne by a pure worker node: 2·M·N.
func PSWorkerParams(m, n int64) int64 { return 2 * m * n }

// PSColocatedParams returns the PS cost borne by a node that is both
// server and worker: 2·M·N·(P1+P2−2)/P2.
func PSColocatedParams(m, n int64, c ClusterShape) int64 {
	return 2 * m * n * int64(c.Workers+c.Servers-2) / int64(c.Servers)
}

// SFBWorkerParams returns the SFB cost per worker: 2·K·(P1−1)·(M+N).
func SFBWorkerParams(m, n int64, c ClusterShape) int64 {
	return 2 * int64(c.Batch) * int64(c.Workers-1) * (m + n)
}

// AdamServerParams returns Project Adam's worst-case server cost:
// P1·M·N + P1·K·(M+N) (receive SFs from every worker, then broadcast the
// full matrix to every worker).
func AdamServerParams(m, n int64, c ClusterShape) int64 {
	p1 := int64(c.Workers)
	k := int64(c.Batch)
	return p1*m*n + p1*k*(m+n)
}

// AdamWorkerParams returns Project Adam's per-worker cost:
// K·(M+N) + M·N (send one SF, pull one full matrix).
func AdamWorkerParams(m, n int64, c ClusterShape) int64 {
	return int64(c.Batch)*(m+n) + m*n
}

// AdamColocatedParams returns Project Adam's cost for a node that is
// both the owning server and a worker: (P1−1)·(M·N + K·M + K·N).
func AdamColocatedParams(m, n int64, c ClusterShape) int64 {
	k := int64(c.Batch)
	return int64(c.Workers-1) * (m*n + k*m + k*n)
}

// RingWorkerParams returns the ring all-reduce upload cost per worker:
// 2·M·N·(P1−1)/P1 — the reduce-scatter's P1−1 uploads of M·N/P1 values
// each, doubled to stay on the same both-directions convention as
// Table 1's PS terms. The all-gather plays the server-broadcast role
// and, like the PS pull, is not charged to the worker.
func RingWorkerParams(m, n int64, c ClusterShape) int64 {
	p := int64(c.Workers)
	return 2 * m * n * (p - 1) / p
}

// treeGroups returns the two-level hierarchy shape for p workers:
// groups of capacity g = ⌈√p⌉, and m = ⌈p/g⌉ groups.
func treeGroups(p int) (g, m int) {
	g = 1
	for g*g < p {
		g++
	}
	return g, (p + g - 1) / g
}

// TreeRingWorkerParams returns the tree/ring upload cost per worker:
// the intra-group ring over g members plus the inter-group leader chain
// over m groups amortized across the group —
// 2·M·N·((g−1)/g + (m−1)/(g·m)).
func TreeRingWorkerParams(m, n int64, c ClusterShape) int64 {
	g, gm := treeGroups(c.Workers)
	return 2*m*n*int64(g-1)/int64(g) + 2*m*n*int64(gm-1)/int64(g*gm)
}

// BestScheme implements Algorithm 1: for an FC layer, SFB wins when its
// per-worker cost does not exceed the colocated PS cost; all other
// layers (indecomposable gradients) go through the PS.
func BestScheme(l *nn.Layer, c ClusterShape) Scheme {
	m, n := l.GradMatrixShape()
	return bestSchemeMN(m, n, l.SFCapable(), c)
}

// bestSchemeMN is Algorithm 1 on a bare M×N gradient shape — the shared
// core behind BestScheme (layer descriptors, performance plane) and
// Planner.SchemeFor (tensor specs, functional plane), so the two planes
// can never disagree on a routing decision.
//
// The ring collectives are deliberately absent: in pure byte counts the
// ring ties or beats the PS on every shape (its real trade is frame
// depth, not bytes), so the byte-count rule would degenerate to
// ring-everywhere. Rings are admitted only by the bandwidth-aware
// comparison in Planner.SchemeFor, where their 2(P−1) critical path is
// priced.
func bestSchemeMN(m, n int64, sfCapable bool, c ClusterShape) Scheme {
	if !sfCapable || c.Workers <= 1 {
		return PS
	}
	if SFBWorkerParams(m, n, c) <= PSColocatedParams(m, n, c) {
		return SFB
	}
	return PS
}

// SchemeBytes returns the bytes a single worker sends per iteration to
// synchronize layer l under scheme s (float32 payloads; quantized
// payloads for OneBitPS on FC layers).
func SchemeBytes(l *nn.Layer, s Scheme, c ClusterShape) int64 {
	m, n := l.GradMatrixShape()
	return schemeBytesMN(m, n, l.SFCapable(), s, c)
}

// schemeFramesMN models the per-worker egress frames per iteration
// under scheme s — the fixed per-message term of the bandwidth-aware
// cost model, on the same egress-only granularity as schemeBytesMN: a
// PS worker ships one push frame per iteration, an SFB worker one
// factor frame to each of the P1−1 peers. Bytes scale with the link
// speed but frames do not, which is what lets a *measured* bandwidth
// flip Algorithm 1's decision: on a slow link the byte term dominates
// (SFB's smaller payload wins fat FC layers); on a fast link the
// per-frame overhead dominates (the PS's single push wins them back).
// The collectives pay per hop: a ring worker serializes 2(P1−1) frames
// (reduce-scatter plus all-gather), the tree/ring 2(g−1)+2(m−1) across
// its two levels — the depth term that lets the fast-link regime prefer
// the PS's single fat push over the ring's many thin ones.
func schemeFramesMN(s Scheme, c ClusterShape) float64 {
	switch s {
	case SFB:
		return float64(c.Workers - 1)
	case Ring:
		return float64(2 * (c.Workers - 1))
	case TreeRing:
		g, m := treeGroups(c.Workers)
		return float64(2*(g-1) + 2*(m-1))
	default:
		return 1 // PS, OneBitPS, AdamSF: one push to the owning server
	}
}

// schemeBytesMN is SchemeBytes on a bare M×N gradient shape.
func schemeBytesMN(m, n int64, sfCapable bool, s Scheme, c ClusterShape) int64 {
	switch s {
	case SFB:
		// (P1−1) peers × one SF each way is counted once as egress.
		return 4 * int64(c.Batch) * int64(c.Workers-1) * (m + n)
	case AdamSF:
		return 4 * int64(c.Batch) * (m + n)
	case OneBitPS:
		if sfCapable {
			words := (m*n + 63) / 64
			return 8*words + 16
		}
		return 4 * m * n
	case Ring:
		// Upload half of the Table 1 round trip at 4 bytes/value — the
		// same egress-only convention as the PS's 4·M·N push.
		return 2 * RingWorkerParams(m, n, c)
	case TreeRing:
		return 2 * TreeRingWorkerParams(m, n, c)
	default:
		return 4 * m * n
	}
}
