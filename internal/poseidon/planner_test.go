package poseidon

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/nn"
)

// zooCluster is the cluster shape the planner tests evaluate the zoo
// under: 8 colocated worker/server nodes, each model at its Table 3
// batch size.
func zooCluster(m *nn.Model) ClusterShape {
	return ClusterShape{Workers: 8, Servers: 8, Batch: m.BatchSize}
}

// Algorithm 1 decisions pinned for the model zoo: VGG19's fat FC layers
// ride SFB, its thin classifier and every conv tensor ride the PS, and
// GoogLeNet's single thin classifier at batch 128 reduces HybComm to
// pure PS (the paper's Section 5.2 observation).
func TestPlannerPinsZooDecisions(t *testing.T) {
	cases := []struct {
		model *nn.Model
		layer string
		want  Scheme
	}{
		// VGG19 (batch 32): fc6 is 4096×25088 — the fat FC layer SFB
		// exists for. fc8 (1000×4096) also clears the threshold at K=32.
		{nn.VGG19(), "fc6", SFB},
		{nn.VGG19(), "fc7", SFB},
		{nn.VGG19(), "fc8", SFB},
		// VGG19-22K: the 21841×4096 classifier is the paper's most
		// communication-bound tensor; SFB must win.
		{nn.VGG19_22K(), "fc8", SFB},
		// GoogLeNet (batch 128): 1000×1024 classifier — 2K(P−1)(M+N) =
		// 3.6M ≥ 2MN(2P−2)/P = 1.8M, so Algorithm 1 keeps the PS.
		{nn.GoogLeNet(), "loss3/classifier", PS},
		// Conv tensors are indecomposable and never leave the PS.
		{nn.VGG19(), "conv1", PS},
		{nn.AlexNet(), "conv1", PS},
	}
	for _, tc := range cases {
		l := tc.model.Layer(tc.layer)
		if l == nil {
			t.Fatalf("%s: no layer %q", tc.model.Name, tc.layer)
		}
		p := NewPlanner(PolicyHybrid, zooCluster(tc.model))
		if got := p.SchemeFor(LayerSpec(0, l)); got != tc.want {
			m, n := l.GradMatrixShape()
			t.Errorf("%s/%s (%dx%d, K=%d): scheme %v, want %v",
				tc.model.Name, tc.layer, m, n, tc.model.BatchSize, got, tc.want)
		}
	}
}

// zooDecisions evaluates the bandwidth-aware hybrid planner for one
// layer across a worker-count sweep and returns the scheme sequence.
func zooDecisions(m *nn.Model, l *nn.Layer, scales []int, bw, ovh float64) []Scheme {
	out := make([]Scheme, len(scales))
	for i, w := range scales {
		p := NewPlanner(PolicyHybrid, ClusterShape{Workers: w, Servers: w, Batch: m.BatchSize})
		p.BytesPerSec = bw
		p.FrameOverhead = ovh
		out[i] = p.SchemeFor(LayerSpec(0, l))
	}
	return out
}

// The bandwidth-aware crossover table: on a 10 MB/s link with the
// default 1 ms frame overhead, Algorithm 1's three-way PS/SFB/ring
// comparison produces every regime the cost model predicts as the
// cluster grows through N ∈ {8,16,32,64,128}:
//
//   - Fat FC layers start on SFB (factor bytes ≪ dense bytes) and the
//     very largest cross to the ring once SFB's K(P−1)(M+N) factor
//     traffic outgrows the ring's near-constant 2MN(P−1)/P (vgg19 fc6
//     at P≈110, the 21841×4096 VGG19-22K classifier likewise).
//   - Mid-sized FC layers cross SFB→PS instead: factor traffic grows
//     with P while the dense push is flat, and the ring's 2(P−1) frame
//     depth prices it out before its byte saving matters.
//   - Big conv tensors (indecomposable, SFB ineligible) start on the
//     ring — at small P its (P−1)/P byte discount on a slow link beats
//     the extra hop overhead — and hand back to the PS as the frame
//     depth grows linearly while the byte saving saturates.
//   - Small tensors never leave the PS at any scale.
//
// The exact crossover points are pinned so any cost-model edit that
// moves a boundary fails loudly here rather than silently re-routing
// the zoo.
func TestPlannerZooCrossoverTable(t *testing.T) {
	const bw, ovh = 1e7, DefaultFrameOverheadSec
	scales := []int{8, 16, 32, 64, 128}
	cases := []struct {
		model *nn.Model
		layer string
		want  []Scheme
	}{
		// 4096×25088: the paper's fattest FC layer. SFB until the factor
		// traffic overtakes the ring's byte floor at P≈110.
		{nn.VGG19(), "fc6", []Scheme{SFB, SFB, SFB, SFB, Ring}},
		// 4096×4096: square enough that SFB's M+N stays cheap longer, but
		// the crossover at P=128 lands on PS — the ring's 254 hops cost
		// 254 ms against the dense push's 6.7 ms byte handicap.
		{nn.VGG19(), "fc7", []Scheme{SFB, SFB, SFB, SFB, PS}},
		// 1000×4096: thin classifier, SFB→PS at P=32.
		{nn.VGG19(), "fc8", []Scheme{SFB, SFB, PS, PS, PS}},
		// 21841×4096: the VGG19-22K classifier is fat enough to ride SFB
		// deep into the sweep and still end on the ring like fc6.
		{nn.VGG19_22K(), "fc8", []Scheme{SFB, SFB, SFB, SFB, Ring}},
		// 2.36M-element conv tensor: ring at 8–16 workers, PS beyond.
		{nn.VGG19(), "conv22", []Scheme{Ring, Ring, PS, PS, PS}},
		// 295K-element conv tensor: only the 8-worker ring is worth 14 hops.
		{nn.VGG19(), "conv11", []Scheme{Ring, PS, PS, PS, PS}},
		// 1000×1024 at batch 128: SFB is priced out by the huge K, and the
		// dense tensor is just big enough for the 8-worker ring.
		{nn.GoogLeNet(), "loss3/classifier", []Scheme{Ring, PS, PS, PS, PS}},
		// 1000×2048 at batch 32: classic SFB→PS classifier crossover.
		{nn.ResNet152(), "fc1000", []Scheme{SFB, SFB, PS, PS, PS}},
		{nn.InceptionV3(), "logits", []Scheme{SFB, SFB, PS, PS, PS}},
		// CIFAR-10-quick's ip1 is too small for anything but the PS at
		// every scale.
		{nn.CIFARQuick(), "ip1", []Scheme{PS, PS, PS, PS, PS}},
	}
	for _, tc := range cases {
		l := tc.model.Layer(tc.layer)
		if l == nil {
			t.Fatalf("%s: no layer %q", tc.model.Name, tc.layer)
		}
		got := zooDecisions(tc.model, l, scales, bw, ovh)
		for i := range scales {
			if got[i] != tc.want[i] {
				m, n := l.GradMatrixShape()
				t.Errorf("%s/%s (%dx%d, K=%d) at %d workers: scheme %v, want %v (full sweep %v)",
					tc.model.Name, tc.layer, m, n, tc.model.BatchSize, scales[i], got[i], tc.want[i], got)
			}
		}
	}

	// TreeRing is override-only: no auto-plan may pick it for any layer
	// of any zoo model at any scale, bandwidth-aware or not.
	for _, m := range nn.Zoo() {
		for _, li := range m.SyncLayers() {
			l := &m.Layers[li]
			for i, s := range zooDecisions(m, l, scales, bw, ovh) {
				if s == TreeRing {
					t.Fatalf("%s/%s at %d workers: auto-plan selected override-only TreeRing",
						m.Name, l.Name, scales[i])
				}
			}
		}
	}
}

// The seed trainer's worked threshold example (formerly pinned on the
// deleted comm.Decide): K=2, P=4, 32×16 weights pick SFB; a huge batch
// flips the same layer back to PS; a single worker has nothing to
// broadcast.
func TestPlannerThresholdExamples(t *testing.T) {
	spec := TensorSpec{Rows: 32, Cols: 16, SFCapable: true}
	if got := NewPlanner(PolicyHybrid, ClusterShape{Workers: 4, Batch: 2}).SchemeFor(spec); got != SFB {
		t.Fatalf("32x16, K=2, P=4: %v, want SFB (2K(P-1)(M+N)=576 <= 2MN(2P-2)/P=1536)", got)
	}
	if got := NewPlanner(PolicyHybrid, ClusterShape{Workers: 4, Batch: 64}).SchemeFor(spec); got != PS {
		t.Fatalf("huge batches must fall back to PS, got %v", got)
	}
	if got := NewPlanner(PolicyHybrid, ClusterShape{Workers: 1, Batch: 2}).SchemeFor(spec); got != PS {
		t.Fatalf("single worker has nothing to broadcast, got %v", got)
	}
}

// No policy may auto-select the modeled baselines: hybrid never picks
// 1-bit or Adam, PolicyOneBit only quantizes SF-capable tensors, and
// conv tensors stay on the PS under every policy.
func TestPlannerNeverAutoSelectsBaselines(t *testing.T) {
	for _, m := range nn.Zoo() {
		c := zooCluster(m)
		hybrid := NewPlanner(PolicyHybrid, c)
		ps := NewPlanner(PolicyPS, c)
		onebit := NewPlanner(PolicyOneBit, c)
		for i, li := range m.SyncLayers() {
			spec := LayerSpec(i, &m.Layers[li])
			if s := hybrid.SchemeFor(spec); s == OneBitPS || s == AdamSF {
				t.Fatalf("%s layer %s: hybrid policy auto-selected baseline %v", m.Name, spec.Name, s)
			}
			if s := ps.SchemeFor(spec); s != PS {
				t.Fatalf("%s layer %s: PS policy chose %v", m.Name, spec.Name, s)
			}
			s := onebit.SchemeFor(spec)
			if spec.SFCapable && s != OneBitPS {
				t.Fatalf("%s layer %s: 1-bit policy chose %v for an FC tensor", m.Name, spec.Name, s)
			}
			if !spec.SFCapable && s != PS {
				t.Fatalf("%s layer %s: 1-bit policy chose %v for a conv tensor", m.Name, spec.Name, s)
			}
		}
	}
}

// The planner's hybrid policy must agree with BestScheme — the
// coordinator's Algorithm 1 entry point — on every layer of every
// registered model, across cluster scales. One rule, two planes.
func TestPlannerMatchesBestSchemeAcrossZoo(t *testing.T) {
	for _, m := range nn.Zoo() {
		for _, workers := range []int{1, 2, 4, 8, 16, 32} {
			c := ClusterShape{Workers: workers, Servers: workers, Batch: m.BatchSize}
			p := NewPlanner(PolicyHybrid, c)
			for i, li := range m.SyncLayers() {
				l := &m.Layers[li]
				if got, want := p.SchemeFor(LayerSpec(i, l)), BestScheme(l, c); got != want {
					t.Fatalf("%s/%s at %d workers: planner %v, BestScheme %v",
						m.Name, l.Name, workers, got, want)
				}
			}
		}
	}
}

// Overrides trump the policy, and impossible overrides (SFB for an
// indecomposable tensor) fail at plan time rather than at launch.
func TestPlannerOverrides(t *testing.T) {
	c := ClusterShape{Workers: 4, Batch: 2}
	specs := []TensorSpec{
		{Index: 0, Name: "conv.W", Rows: 100, Cols: 1},
		{Index: 1, Name: "fc.W", Rows: 32, Cols: 16, SFCapable: true},
	}
	p := NewPlanner(PolicyHybrid, c)
	p.Override(1, PS)
	if got := p.SchemeFor(specs[1]); got != PS {
		t.Fatalf("override to PS ignored: %v", got)
	}
	plans, err := p.ParamPlans(specs)
	if err != nil {
		t.Fatal(err)
	}
	if plans[1].Route != comm.RoutePS {
		t.Fatalf("param 1 route %v, want PS", plans[1].Route)
	}

	bad := NewPlanner(PolicyHybrid, c)
	bad.Override(0, SFB)
	if _, err := bad.ParamPlans(specs); err == nil {
		t.Fatal("SFB override on an indecomposable tensor must fail at plan time")
	}
	// The preview must agree with the executable plan on legality: the
	// same impossible override surfaces in Decision.Err with no
	// fictional cost numbers.
	d := bad.Decide(specs[0])
	if d.Err == nil {
		t.Fatal("Decide accepted the override ParamPlans rejects")
	}
	if d.WireBytes != 0 || d.Seconds != 0 {
		t.Fatalf("infeasible decision carries costs: %+v", d)
	}

	adam := NewPlanner(PolicyHybrid, c)
	adam.Override(1, AdamSF)
	if _, err := adam.ParamPlans(specs); err == nil {
		t.Fatal("AdamSF has no comm route and must be rejected")
	}

	// A typo'd override index must fail loudly, not silently leave the
	// run on its default plan.
	typo := NewPlanner(PolicyHybrid, c)
	typo.Override(12, SFB)
	if _, err := typo.ParamPlans(specs); err == nil {
		t.Fatal("override for a nonexistent param must be rejected")
	}
}

// ParamPlans must carry the spec metadata the router and metrics rely
// on: dense indices, shapes, names, and routes mapped 1:1 from schemes.
func TestPlannerParamPlans(t *testing.T) {
	c := ClusterShape{Workers: 4, Batch: 2}
	specs := []TensorSpec{
		{Index: 0, Name: "fc0.W", Rows: 32, Cols: 16, SFCapable: true},
		{Index: 1, Name: "fc0.b", Rows: 1, Cols: 32},
	}
	plans, err := NewPlanner(PolicyHybrid, c).ParamPlans(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("%d plans", len(plans))
	}
	if plans[0].Route != comm.RouteSFB || plans[1].Route != comm.RoutePS {
		t.Fatalf("routes %v/%v, want SFB/PS", plans[0].Route, plans[1].Route)
	}
	for i, plan := range plans {
		if plan.Index != specs[i].Index || plan.Name != specs[i].Name ||
			plan.Rows != specs[i].Rows || plan.Cols != specs[i].Cols {
			t.Fatalf("plan %d dropped spec metadata: %+v vs %+v", i, plan, specs[i])
		}
	}
}

// Decisions must expose the Table 1 numbers the choice was made from,
// and a configured bandwidth must turn bytes into seconds.
func TestPlannerDecisionCosts(t *testing.T) {
	p := NewPlanner(PolicyHybrid, ClusterShape{Workers: 4, Batch: 2})
	p.BytesPerSec = 1e6
	d := p.Decide(TensorSpec{Index: 0, Name: "fc.W", Rows: 32, Cols: 16, SFCapable: true})
	if d.Scheme != SFB {
		t.Fatalf("scheme %v", d.Scheme)
	}
	if d.SFBParams != 576 || d.PSParams != 1536 {
		t.Fatalf("cost params SFB=%d PS=%d, want 576/1536", d.SFBParams, d.PSParams)
	}
	wantBytes := int64(4 * 2 * 3 * (32 + 16))
	if d.WireBytes != wantBytes {
		t.Fatalf("wire bytes %d, want %d", d.WireBytes, wantBytes)
	}
	if want := float64(wantBytes) / 1e6; d.Seconds != want {
		t.Fatalf("seconds %g, want %g", d.Seconds, want)
	}
}
