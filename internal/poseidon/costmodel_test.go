package poseidon

import (
	"testing"
	"testing/quick"

	"repro/internal/nn"
)

// Table 1 worked example from Section 3.2: VGG19's 4096×4096 FC layer,
// K=32, P1=P2=8. PS worker ≈ 34M params, PS server ≈ 34M, colocated
// ≈ 58.7M, SFB ≈ 3.7M.
func TestTable1WorkedExample(t *testing.T) {
	c := ClusterShape{Workers: 8, Servers: 8, Batch: 32}
	const m, n = 4096, 4096
	if got := PSWorkerParams(m, n); got != 33554432 {
		t.Errorf("PS worker = %d, want 33554432 (≈34M)", got)
	}
	if got := PSServerParams(m, n, c); got != 33554432 {
		t.Errorf("PS server = %d, want 33554432 (≈34M)", got)
	}
	if got := PSColocatedParams(m, n, c); got != 58720256 {
		t.Errorf("PS colocated = %d, want 58720256 (≈58.7M)", got)
	}
	if got := SFBWorkerParams(m, n, c); got != 3670016 {
		t.Errorf("SFB worker = %d, want 3670016 (≈3.7M)", got)
	}
}

func TestAdamCosts(t *testing.T) {
	c := ClusterShape{Workers: 8, Servers: 8, Batch: 32}
	const m, n = 4096, 4096
	wantServer := int64(8)*m*n + int64(8)*32*(m+n)
	if got := AdamServerParams(m, n, c); got != wantServer {
		t.Errorf("Adam server = %d, want %d", got, wantServer)
	}
	wantWorker := int64(32)*(m+n) + int64(m)*n
	if got := AdamWorkerParams(m, n, c); got != wantWorker {
		t.Errorf("Adam worker = %d, want %d", got, wantWorker)
	}
	wantColoc := int64(7) * (m*n + 32*m + 32*n)
	if got := AdamColocatedParams(m, n, c); got != wantColoc {
		t.Errorf("Adam colocated = %d, want %d", got, wantColoc)
	}
	// Adam's server cost dwarfs a balanced PS shard's cost — the
	// imbalance the paper shows in Fig. 10.
	if AdamServerParams(m, n, c) < 4*PSServerParams(m, n, c) {
		t.Error("Adam server cost should far exceed a balanced PS shard")
	}
}

func TestBestSchemePicksSFBForBigFC(t *testing.T) {
	c := ClusterShape{Workers: 8, Servers: 8, Batch: 32}
	fc := &nn.Layer{Kind: nn.FC, InDim: 4096, OutDim: 4096}
	if got := BestScheme(fc, c); got != SFB {
		t.Fatalf("4096×4096 FC @ K=32, 8 nodes: got %v, want SFB", got)
	}
}

// Section 5.2: GoogLeNet's single thin FC (1000×1024) at batch 128 on 16
// nodes reduces to PS.
func TestBestSchemeGoogLeNetReducesToPS(t *testing.T) {
	c := ClusterShape{Workers: 16, Servers: 16, Batch: 128}
	fc := &nn.Layer{Kind: nn.FC, InDim: 1024, OutDim: 1000}
	if got := BestScheme(fc, c); got != PS {
		t.Fatalf("GoogLeNet classifier: got %v, want PS", got)
	}
}

func TestBestSchemeConvAlwaysPS(t *testing.T) {
	c := ClusterShape{Workers: 8, Servers: 8, Batch: 32}
	conv := &nn.Layer{Kind: nn.Conv, KH: 3, KW: 3, OutC: 64, In: nn.Shape{C: 3, H: 224, W: 224}, Bias: true}
	if got := BestScheme(conv, c); got != PS {
		t.Fatalf("conv: got %v, want PS", got)
	}
}

func TestBestSchemeSingleWorkerPS(t *testing.T) {
	c := ClusterShape{Workers: 1, Servers: 1, Batch: 32}
	fc := &nn.Layer{Kind: nn.FC, InDim: 4096, OutDim: 4096}
	if got := BestScheme(fc, c); got != PS {
		t.Fatalf("single worker: got %v, want PS (no peers to broadcast to)", got)
	}
}

// Property: BestScheme always picks the cheaper side of Algorithm 1's
// inequality for SF-capable layers.
func TestBestSchemeMatchesCostsProperty(t *testing.T) {
	f := func(mRaw, nRaw, pRaw, kRaw uint16) bool {
		m := 16 + int(mRaw)%8192
		n := 16 + int(nRaw)%8192
		p := 2 + int(pRaw)%31
		k := 1 + int(kRaw)%256
		c := ClusterShape{Workers: p, Servers: p, Batch: k}
		fc := &nn.Layer{Kind: nn.FC, InDim: n, OutDim: m}
		got := BestScheme(fc, c)
		sfb := SFBWorkerParams(int64(m), int64(n), c)
		ps := PSColocatedParams(int64(m), int64(n), c)
		if sfb <= ps {
			return got == SFB
		}
		return got == PS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// SFB cost grows quadratically with workers (paper Section 2.1, point
// 3), so for any FC layer there is a worker count beyond which PS wins.
func TestSFBLosesAtScale(t *testing.T) {
	fc := &nn.Layer{Kind: nn.FC, InDim: 4096, OutDim: 4096}
	sawSFB, sawPS := false, false
	prev := SFB
	for p := 2; p <= 4096; p *= 2 {
		c := ClusterShape{Workers: p, Servers: p, Batch: 32}
		s := BestScheme(fc, c)
		if s == SFB {
			sawSFB = true
			if prev == PS {
				t.Fatal("scheme flipped back to SFB at larger scale")
			}
		} else {
			sawPS = true
		}
		prev = s
	}
	if !sawSFB || !sawPS {
		t.Fatalf("expected a crossover: sawSFB=%v sawPS=%v", sawSFB, sawPS)
	}
}

func TestSchemeBytes(t *testing.T) {
	c := ClusterShape{Workers: 8, Servers: 8, Batch: 32}
	fc := &nn.Layer{Kind: nn.FC, InDim: 4096, OutDim: 4096}
	if got := SchemeBytes(fc, PS, c); got != 4*4096*4096 {
		t.Errorf("PS bytes = %d", got)
	}
	if got := SchemeBytes(fc, SFB, c); got != 4*32*7*(4096+4096) {
		t.Errorf("SFB bytes = %d", got)
	}
	if got := SchemeBytes(fc, AdamSF, c); got != 4*32*(4096+4096) {
		t.Errorf("Adam bytes = %d", got)
	}
	qb := SchemeBytes(fc, OneBitPS, c)
	if qb >= 4*4096*4096/30 {
		t.Errorf("1-bit bytes = %d, want ≈1/32 of dense", qb)
	}
	conv := &nn.Layer{Kind: nn.Conv, KH: 3, KW: 3, OutC: 8, In: nn.Shape{C: 4, H: 8, W: 8}, Bias: true}
	if got := SchemeBytes(conv, OneBitPS, c); got != 4*conv.Params() {
		t.Errorf("conv under 1-bit should stay dense: %d", got)
	}
}

func TestSchemeString(t *testing.T) {
	for s, want := range map[Scheme]string{PS: "PS", SFB: "SFB", AdamSF: "Adam", OneBitPS: "1bit"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if Scheme(42).String() == "" {
		t.Error("unknown scheme must render")
	}
}
