package poseidon

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/nn"
)

// Coordinator maintains the model and cluster configuration — the
// paper's "information book" — and answers BestScheme/Query requests
// from syncers (Table 2 APIs). It is safe for concurrent use by the
// functional plane's worker goroutines.
type Coordinator struct {
	mu      sync.RWMutex
	model   *nn.Model
	cluster ClusterShape
	place   *Placement
	// overrides pins specific layers to a scheme (used by the Adam and
	// 1-bit baselines and by ablations).
	overrides map[int]Scheme
	forced    *Scheme
}

// NewCoordinator builds a coordinator for model m on cluster c using
// Poseidon's fine-grained placement with the default 2MB KV pairs.
func NewCoordinator(m *nn.Model, c ClusterShape) *Coordinator {
	return NewCoordinatorWithPlacement(m, c, FineGrained, DefaultChunkBytes)
}

// NewCoordinatorWithPlacement builds a coordinator with an explicit
// placement policy and chunk size.
func NewCoordinatorWithPlacement(m *nn.Model, c ClusterShape, policy PlacementPolicy, chunkBytes int64) *Coordinator {
	if c.Workers <= 0 || c.Servers <= 0 {
		panic(fmt.Sprintf("poseidon: bad cluster shape %+v", c))
	}
	if c.Batch <= 0 {
		c.Batch = m.BatchSize
	}
	return &Coordinator{
		model:     m,
		cluster:   c,
		place:     NewPlacement(m, c.Servers, policy, chunkBytes),
		overrides: make(map[int]Scheme),
	}
}

// Model returns the network being trained.
func (co *Coordinator) Model() *nn.Model { return co.model }

// Cluster returns the cluster shape.
func (co *Coordinator) Cluster() ClusterShape { return co.cluster }

// Placement returns the KV placement.
func (co *Coordinator) Placement() *Placement { return co.place }

// ForceScheme pins every layer to scheme s (nil clears). Used to model
// the Caffe+PS / TF+WFBP baselines where HybComm is disabled.
func (co *Coordinator) ForceScheme(s *Scheme) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.forced = s
}

// OverrideLayer pins one layer to a scheme (used by the Adam and 1-bit
// baselines, which special-case FC layers only).
func (co *Coordinator) OverrideLayer(layer int, s Scheme) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.overrides[layer] = s
}

// BestScheme returns the communication scheme for layer index l
// (Algorithm 1, plus any baseline overrides).
func (co *Coordinator) BestScheme(l int) Scheme {
	co.mu.RLock()
	defer co.mu.RUnlock()
	if s, ok := co.overrides[l]; ok {
		return s
	}
	if co.forced != nil {
		return *co.forced
	}
	return BestScheme(&co.model.Layers[l], co.cluster)
}

// Query answers named lookups from the information book, mirroring the
// paper's string-keyed Query API.
func (co *Coordinator) Query(prop string) (int, error) {
	co.mu.RLock()
	defer co.mu.RUnlock()
	switch prop {
	case "n_worker":
		return co.cluster.Workers, nil
	case "n_server":
		return co.cluster.Servers, nil
	case "batchsize":
		return co.cluster.Batch, nil
	case "n_layer":
		return len(co.model.Layers), nil
	case "n_sync_layer":
		return len(co.model.SyncLayers()), nil
	case "n_chunk":
		return co.place.NumChunks(), nil
	default:
		return 0, fmt.Errorf("poseidon: unknown property %q", prop)
	}
}

// LayerPlan describes how one layer will be synchronized this iteration.
type LayerPlan struct {
	Layer  int
	Scheme Scheme
	Chunks []Chunk // PS path (nil for SFB)
	// SFBytes is the wire size of one sufficient-factor message
	// (SFB/Adam paths).
	SFBytes int64
	// DenseBytes is the wire size of the full gradient/parameter matrix.
	DenseBytes int64
	// QuantBytes is the wire size of the 1-bit encoding.
	QuantBytes int64
}

// Plan returns the synchronization plan for every parameterized layer,
// in network order. The engine and the functional trainer both execute
// from this plan, so scheme decisions cannot diverge between planes.
func (co *Coordinator) Plan() []LayerPlan {
	var plans []LayerPlan
	for _, li := range co.model.SyncLayers() {
		l := &co.model.Layers[li]
		m, n := l.GradMatrixShape()
		p := LayerPlan{
			Layer:      li,
			Scheme:     co.BestScheme(li),
			Chunks:     co.place.ByLayer[li],
			DenseBytes: 4 * m * n,
		}
		if l.SFCapable() {
			p.SFBytes = 4 * int64(co.cluster.Batch) * (m + n)
			words := (m*n + 63) / 64
			p.QuantBytes = 8*words + 16
		}
		plans = append(plans, p)
	}
	return plans
}

// SchemeSummary reports, for logging, which layers picked which scheme.
func (co *Coordinator) SchemeSummary() string {
	counts := make(map[Scheme]int)
	for _, p := range co.Plan() {
		counts[p.Scheme]++
	}
	var keys []int
	for s := range counts {
		keys = append(keys, int(s))
	}
	sort.Ints(keys)
	out := ""
	for _, k := range keys {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%v:%d", Scheme(k), counts[Scheme(k)])
	}
	return out
}
