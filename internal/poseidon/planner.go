// Planner: the bridge between Algorithm 1 and the functional plane's
// synchronization runtime. The performance plane has always consulted
// this package's cost model through the Coordinator; the Planner gives
// the functional trainer the same single source of routing truth — it
// evaluates Algorithm 1 per parameter tensor (shape, batch size,
// cluster size) under a policy (hybrid, pure-PS, or the 1-bit
// baseline), honors explicit per-tensor overrides, and emits the
// comm.ParamPlan set the trainer hands to its Router. Neither plane
// carries a private copy of the decision rule anymore.
package poseidon

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/nn"
)

// Policy selects how the Planner maps tensors to schemes.
type Policy int

// Planner policies. They differ only in what Algorithm 1 is allowed to
// choose — the trainer's PS / Hybrid / 1-bit modes are these policies,
// not separate routing code paths.
const (
	// PolicyHybrid consults Algorithm 1 per tensor (HybComm).
	PolicyHybrid Policy = iota
	// PolicyPS routes every tensor through the parameter server.
	PolicyPS
	// PolicyOneBit routes SF-capable tensors through 1-bit quantized PS
	// pushes (the CNTK baseline) and everything else through the PS.
	PolicyOneBit
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyHybrid:
		return "hybrid"
	case PolicyPS:
		return "ps"
	case PolicyOneBit:
		return "1bit"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// TensorSpec describes one parameter tensor to plan: its gradient
// shape, whether that gradient admits a sufficient-factor
// decomposition, and its global parameter index.
type TensorSpec struct {
	// Index is the global parameter index (comm.ParamPlan.Index).
	Index int
	// Name labels the tensor for logs and metrics (e.g. "ip1.W").
	Name string
	// Rows, Cols give the gradient matrix shape (M×N in Table 1 terms;
	// orientation does not affect the cost model).
	Rows, Cols int
	// SFCapable marks rank-K decomposable gradients (FC weight
	// matrices). Only these may ride SFB or 1-bit quantization.
	SFCapable bool
}

// Elems returns Rows·Cols.
func (t TensorSpec) Elems() int { return t.Rows * t.Cols }

// LayerSpec derives the planner spec for a model-zoo layer descriptor,
// so zoo models can be planned without instantiating real tensors.
func LayerSpec(index int, l *nn.Layer) TensorSpec {
	m, n := l.GradMatrixShape()
	return TensorSpec{
		Index: index, Name: l.Name,
		Rows: int(m), Cols: int(n),
		SFCapable: l.SFCapable(),
	}
}

// Decision is one planned tensor with the cost-model numbers behind the
// choice (for logs, the -autoplan dump, and tests).
type Decision struct {
	Spec   TensorSpec
	Scheme Scheme
	// PSParams, SFBParams, and RingParams are Table 1's per-node
	// parameter counts for the candidate schemes (SFBParams is 0 for
	// tensors that cannot ride SFB).
	PSParams, SFBParams, RingParams int64
	// WireBytes is the per-worker egress per iteration under the chosen
	// scheme.
	WireBytes int64
	// Seconds is WireBytes over the planner's configured bandwidth
	// (0 when no bandwidth is set).
	Seconds float64
	// Err is non-nil when an explicit override demands a scheme this
	// tensor cannot ride (ParamPlans fails with the same error); the
	// cost fields are zeroed since no such wire traffic can exist.
	Err error
}

// Tuning defaults for the bandwidth-aware planner. Exported so the
// trainer and the Session facade apply the same values the tests pin.
const (
	// DefaultFrameOverheadSec is the modeled fixed cost per wire frame
	// when the planner is bandwidth-aware (serialization, syscall, and
	// protocol latency that does not scale with payload size).
	DefaultFrameOverheadSec = 1e-3
	// DefaultReplanAlpha is the EWMA weight of the newest bandwidth
	// observation in Replan.
	DefaultReplanAlpha = 0.5
	// DefaultReplanHysteresis is the fractional modeled-time advantage a
	// candidate scheme needs over the incumbent before Replan flips a
	// route — the damping that keeps routes from flapping when the
	// estimate wobbles inside a ±10% band.
	DefaultReplanHysteresis = 0.10
)

// Planner evaluates Algorithm 1 per tensor under a policy and cluster
// shape. The zero value is unusable; construct with NewPlanner.
type Planner struct {
	// Cluster is the shape the cost model evaluates against. Servers
	// defaults to Workers (colocated, as in the paper's runs).
	Cluster ClusterShape
	// Policy constrains what Algorithm 1 may choose.
	Policy Policy
	// Overrides pins parameter index → scheme, trumping the policy
	// (ablations, baselines, and the worker's -route flag).
	Overrides map[int]Scheme
	// BytesPerSec models the per-link bandwidth: Decisions carry
	// estimated seconds, and — together with FrameOverhead — it makes
	// the scheme choice depend on the *absolute* link speed. 0 leaves
	// costs as byte counts only, where the choice is
	// bandwidth-independent (both candidate costs scale by the same
	// link speed). Replan supersedes this initial estimate with the
	// measured EWMA.
	BytesPerSec float64
	// FrameOverhead is the modeled fixed time per wire frame in seconds.
	// When both it and the bandwidth estimate are positive, SchemeFor
	// compares modeled seconds (bytes/bandwidth + frames·overhead)
	// instead of raw bytes; 0 preserves the byte-count rule exactly.
	FrameOverhead float64
	// Alpha is the EWMA weight Replan gives the newest bandwidth
	// observation (0 selects DefaultReplanAlpha).
	Alpha float64
	// Hysteresis is the fractional modeled-time advantage required to
	// flip a route in Replan (0 selects DefaultReplanHysteresis).
	Hysteresis float64

	// bwEst is the EWMA over measured bandwidth observations; it
	// overrides BytesPerSec once the first observation is folded in.
	bwEst float64
	// specs and routes are the spec set bound by the last ParamPlans
	// call plus the live route of every spec — the state Replan
	// re-evaluates and applies hysteresis against.
	specs  []TensorSpec
	routes []Scheme
}

// NewPlanner builds a planner for the given policy and cluster shape
// (Servers defaults to Workers when unset — the colocated deployment).
func NewPlanner(policy Policy, c ClusterShape) *Planner {
	if c.Servers <= 0 {
		c.Servers = c.Workers
	}
	return &Planner{Cluster: c, Policy: policy}
}

// Override pins one parameter index to a scheme.
func (p *Planner) Override(index int, s Scheme) {
	if p.Overrides == nil {
		p.Overrides = make(map[int]Scheme)
	}
	p.Overrides[index] = s
}

// bandwidth returns the live link-speed estimate: the measured EWMA
// once Replan folded an observation in, the configured BytesPerSec
// before that.
func (p *Planner) bandwidth() float64 {
	if p.bwEst > 0 {
		return p.bwEst
	}
	return p.BytesPerSec
}

// BandwidthEstimate exposes the live link-speed estimate (bytes/second)
// for logs and the metrics snapshot's bw_estimate_bps field.
func (p *Planner) BandwidthEstimate() float64 { return p.bandwidth() }

// bandwidthAware reports whether the planner decides by modeled seconds
// (bytes/bandwidth + frames·overhead) rather than raw byte counts.
func (p *Planner) bandwidthAware() bool {
	return p.bandwidth() > 0 && p.FrameOverhead > 0
}

// schemeSeconds models the per-iteration wall time scheme s costs for
// tensor t under the current bandwidth estimate.
func (p *Planner) schemeSeconds(t TensorSpec, s Scheme) float64 {
	bytes := schemeBytesMN(int64(t.Rows), int64(t.Cols), t.SFCapable, s, p.Cluster)
	return float64(bytes)/p.bandwidth() + schemeFramesMN(s, p.Cluster)*p.FrameOverhead
}

// candidates returns the schemes Algorithm 1 may choose for one tensor
// under the hybrid policy, in tie-break order (earlier wins on equal
// modeled time, preserving the byte-rule's SFB-on-tie behavior). The
// ring collective is a candidate for every tensor — it needs no
// decomposable gradient — while TreeRing is override-only: the flat
// cost model would always prefer it at scale, but its advantage exists
// only on oversubscribed fabrics the model cannot see.
func (t TensorSpec) candidates() []Scheme {
	if t.SFCapable {
		return []Scheme{SFB, PS, Ring}
	}
	return []Scheme{PS, Ring}
}

// argminSeconds returns the candidate with the smallest modeled
// per-iteration time; earlier candidates win ties.
func (p *Planner) argminSeconds(t TensorSpec, candidates []Scheme) Scheme {
	best, bestSec := candidates[0], p.schemeSeconds(t, candidates[0])
	for _, s := range candidates[1:] {
		if sec := p.schemeSeconds(t, s); sec < bestSec {
			best, bestSec = s, sec
		}
	}
	return best
}

// SchemeFor returns the scheme for one tensor: explicit override first,
// then the policy (Algorithm 1 under PolicyHybrid). A single-worker
// cluster always uses the PS (nothing to collect). A bandwidth-aware
// hybrid planner compares modeled seconds across every candidate —
// PS/SFB/Ring for decomposable gradients, PS/Ring otherwise — so the
// choice tracks the link it actually has (or believes it has, until
// Replan corrects the estimate); without a bandwidth estimate the
// byte-count rule decides PS-vs-SFB exactly as before.
func (p *Planner) SchemeFor(t TensorSpec) Scheme {
	if s, ok := p.Overrides[t.Index]; ok {
		return s
	}
	if p.Cluster.Workers <= 1 {
		return PS
	}
	if !t.SFCapable {
		if p.Policy == PolicyHybrid && p.bandwidthAware() {
			return p.argminSeconds(t, t.candidates())
		}
		return PS
	}
	switch p.Policy {
	case PolicyPS:
		return PS
	case PolicyOneBit:
		return OneBitPS
	default:
		if p.bandwidthAware() {
			return p.argminSeconds(t, t.candidates())
		}
		return bestSchemeMN(int64(t.Rows), int64(t.Cols), true, p.Cluster)
	}
}

// checkScheme rejects scheme assignments the comm runtime cannot
// execute — the one legality rule shared by Decide and ParamPlans, so
// the preview and the executable plan always agree on override
// feasibility.
func checkScheme(t TensorSpec, s Scheme) error {
	// The ring collectives reduce dense updates, so — like the PS — they
	// are legal for every tensor; SFB and 1-bit need the factorization.
	if !t.SFCapable && s != PS && s != Ring && s != TreeRing {
		return fmt.Errorf("poseidon: param %d (%s): scheme %v needs a decomposable gradient", t.Index, t.Name, s)
	}
	if _, err := s.Route(); err != nil {
		return fmt.Errorf("poseidon: param %d (%s): %w", t.Index, t.Name, err)
	}
	return nil
}

// Decide evaluates one tensor and returns the decision with its cost
// accounting. An infeasible explicit override surfaces in Err rather
// than as fictional cost numbers.
func (p *Planner) Decide(t TensorSpec) Decision {
	d := Decision{Spec: t, Scheme: p.SchemeFor(t)}
	if d.Err = checkScheme(t, d.Scheme); d.Err != nil {
		return d
	}
	m, n := int64(t.Rows), int64(t.Cols)
	d.PSParams = PSColocatedParams(m, n, p.Cluster)
	if t.SFCapable && p.Cluster.Workers > 1 {
		d.SFBParams = SFBWorkerParams(m, n, p.Cluster)
	}
	if p.Cluster.Workers > 1 {
		d.RingParams = RingWorkerParams(m, n, p.Cluster)
	}
	d.WireBytes = schemeBytesMN(m, n, t.SFCapable, d.Scheme, p.Cluster)
	if bw := p.bandwidth(); bw > 0 {
		d.Seconds = float64(d.WireBytes) / bw
	}
	return d
}

// Plan evaluates every spec in order.
func (p *Planner) Plan(specs []TensorSpec) []Decision {
	out := make([]Decision, len(specs))
	for i, t := range specs {
		out[i] = p.Decide(t)
	}
	return out
}

// Route maps a scheme onto the comm runtime's wire strategy. AdamSF is
// a modeled baseline with no functional-plane implementation.
func (s Scheme) Route() (comm.Route, error) {
	switch s {
	case PS:
		return comm.RoutePS, nil
	case SFB:
		return comm.RouteSFB, nil
	case OneBitPS:
		return comm.RouteOneBit, nil
	case Ring:
		return comm.RouteRing, nil
	case TreeRing:
		return comm.RouteTreeRing, nil
	default:
		return 0, fmt.Errorf("poseidon: scheme %v has no comm route", s)
	}
}

// ParamPlans plans every spec and emits the comm runtime's ParamPlan
// set. SF extractors are the caller's to attach (they close over live
// layer state the planner never sees); a plan that selects SFB for a
// tensor the caller marked non-SF-capable cannot occur except through
// an override, which is rejected here.
func (p *Planner) ParamPlans(specs []TensorSpec) ([]comm.ParamPlan, error) {
	// An override naming a parameter that does not exist is a typo'd
	// ablation, not a no-op: silently ignoring it would let a run
	// masquerade as the experiment the user asked for.
	known := make(map[int]bool, len(specs))
	for _, t := range specs {
		known[t.Index] = true
	}
	for idx := range p.Overrides {
		if !known[idx] {
			return nil, fmt.Errorf("poseidon: route override for unknown param %d (model has %d params)", idx, len(specs))
		}
	}
	routes := make([]Scheme, len(specs))
	for i, t := range specs {
		routes[i] = p.SchemeFor(t)
	}
	plans, err := p.plansFromRoutes(specs, routes)
	if err != nil {
		return nil, err
	}
	// Bind the planned set: Replan re-evaluates exactly these specs and
	// applies hysteresis against these routes.
	p.specs = append(p.specs[:0], specs...)
	p.routes = routes
	return plans, nil
}

// plansFromRoutes assembles the executable plan set for an explicit
// scheme assignment, validating each against the comm runtime's
// legality rule.
func (p *Planner) plansFromRoutes(specs []TensorSpec, routes []Scheme) ([]comm.ParamPlan, error) {
	plans := make([]comm.ParamPlan, len(specs))
	for i, t := range specs {
		if err := checkScheme(t, routes[i]); err != nil {
			return nil, err
		}
		route, _ := routes[i].Route() // checkScheme proved it maps
		plans[i] = comm.ParamPlan{
			Index: t.Index, Name: t.Name,
			Rows: t.Rows, Cols: t.Cols,
			Route: route,
			// The per-node PS baseline for this cluster shape, so the
			// metrics subsystem can report measured SFB savings against
			// what routing everything through the KV store would cost.
			PSEquivBytes: 4 * PSColocatedParams(int64(t.Rows), int64(t.Cols), p.Cluster),
		}
	}
	return plans, nil
}

// ReplanShape rebinds the planner to a new cluster shape — a membership
// epoch transition — and re-decides every route in the bound spec set
// for it. Unlike Replan there is no hysteresis: the worker count
// actually changed, so the per-node cost of both candidate schemes
// changed discontinuously and the incumbent deserves no benefit of the
// doubt. Explicit overrides stay pinned, and the live bandwidth
// estimate (EWMA or configured) carries over. Returns the full plan set
// for the new shape, or nil when no specs are bound (the caller then
// keeps its current plans with only the shard sizes changing).
func (p *Planner) ReplanShape(c ClusterShape) ([]comm.ParamPlan, error) {
	if c.Servers <= 0 {
		c.Servers = c.Workers
	}
	p.Cluster = c
	if len(p.specs) == 0 {
		return nil, nil
	}
	for i, t := range p.specs {
		p.routes[i] = p.SchemeFor(t)
	}
	return p.plansFromRoutes(p.specs, p.routes)
}

// BandwidthObservation is one measured wire-rate sample, taken by the
// trainer between replan barriers (egress bytes over elapsed wall
// time).
type BandwidthObservation struct {
	// BytesPerSec is the measured effective egress rate. Non-positive
	// observations are discarded (an idle window says nothing about the
	// link).
	BytesPerSec float64
}

// Replan folds one measured bandwidth observation into the EWMA
// estimate and re-evaluates Algorithm 1 over the spec set bound by the
// last ParamPlans call. A route flips only when the candidate scheme's
// modeled time beats the incumbent's by more than the hysteresis
// margin, so estimates wobbling inside the band hold the plan steady.
// Explicit overrides stay pinned, and only PolicyHybrid re-decides —
// the pure-PS and 1-bit policies have nothing to adapt.
//
// It returns the full new plan set when at least one route flipped and
// nil when the plan holds (also when no specs are bound or the planner
// is not bandwidth-aware). Returned plans carry no SF extractors —
// those close over live layer state the planner never sees; the comm
// layer re-attaches them through its SFSource when it executes the
// swap.
func (p *Planner) Replan(obs BandwidthObservation) []comm.ParamPlan {
	if obs.BytesPerSec > 0 {
		alpha := p.Alpha
		if alpha <= 0 {
			alpha = DefaultReplanAlpha
		}
		if prev := p.bandwidth(); prev > 0 {
			p.bwEst = alpha*obs.BytesPerSec + (1-alpha)*prev
		} else {
			p.bwEst = obs.BytesPerSec
		}
	}
	if len(p.specs) == 0 || !p.bandwidthAware() || p.Policy != PolicyHybrid {
		return nil
	}
	hyst := p.Hysteresis
	if hyst <= 0 {
		hyst = DefaultReplanHysteresis
	}
	changed := false
	for i, t := range p.specs {
		if _, pinned := p.Overrides[t.Index]; pinned || p.Cluster.Workers <= 1 {
			continue
		}
		cur := p.routes[i]
		cands := t.candidates()
		incumbent := false
		for _, s := range cands {
			incumbent = incumbent || s == cur
		}
		if !incumbent {
			continue // baselines reached only via overrides; never re-decided
		}
		// The best challenger (minimum modeled time, candidate order
		// breaking ties) must beat the incumbent by the hysteresis margin.
		best, bestSec := cur, -1.0
		for _, alt := range cands {
			if alt == cur {
				continue
			}
			if sec := p.schemeSeconds(t, alt); bestSec < 0 || sec < bestSec {
				best, bestSec = alt, sec
			}
		}
		if bestSec >= 0 && bestSec < p.schemeSeconds(t, cur)*(1-hyst) {
			p.routes[i] = best
			changed = true
		}
	}
	if !changed {
		return nil
	}
	plans, err := p.plansFromRoutes(p.specs, p.routes)
	if err != nil {
		// Unreachable: flips only move tensors among their own candidate
		// set, every member of which is legal for them.
		panic(fmt.Sprintf("poseidon: Replan produced an illegal plan: %v", err))
	}
	return plans
}
