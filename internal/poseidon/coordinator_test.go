package poseidon

import (
	"strings"
	"testing"

	"repro/internal/nn"
)

func vggCoordinator(workers int) *Coordinator {
	m := nn.VGG19()
	return NewCoordinator(m, ClusterShape{Workers: workers, Servers: workers, Batch: 32})
}

func TestCoordinatorQueries(t *testing.T) {
	co := vggCoordinator(8)
	for prop, want := range map[string]int{
		"n_worker": 8, "n_server": 8, "batchsize": 32,
		"n_layer": len(co.Model().Layers), "n_sync_layer": 19,
	} {
		got, err := co.Query(prop)
		if err != nil {
			t.Fatalf("Query(%q): %v", prop, err)
		}
		if got != want {
			t.Errorf("Query(%q) = %d, want %d", prop, got, want)
		}
	}
	if _, err := co.Query("bogus"); err == nil {
		t.Error("Query(bogus) should error")
	}
	if n, _ := co.Query("n_chunk"); n != co.Placement().NumChunks() {
		t.Error("n_chunk mismatch")
	}
}

func TestCoordinatorDefaultsBatchFromModel(t *testing.T) {
	m := nn.GoogLeNet()
	co := NewCoordinator(m, ClusterShape{Workers: 4, Servers: 4})
	if co.Cluster().Batch != 128 {
		t.Fatalf("batch = %d, want model default 128", co.Cluster().Batch)
	}
}

// On 8 nodes VGG19's three FC layers should pick SFB; all conv layers PS.
func TestPlanHybridOnVGG19(t *testing.T) {
	co := vggCoordinator(8)
	plan := co.Plan()
	if len(plan) != 19 {
		t.Fatalf("plan has %d entries, want 19", len(plan))
	}
	var sfb, ps int
	for _, p := range plan {
		l := &co.Model().Layers[p.Layer]
		switch p.Scheme {
		case SFB:
			sfb++
			if l.Kind != nn.FC {
				t.Errorf("non-FC layer %s picked SFB", l.Name)
			}
			if p.SFBytes == 0 {
				t.Error("SFB layer missing SFBytes")
			}
		case PS:
			ps++
			if len(p.Chunks) == 0 {
				t.Errorf("PS layer %s has no chunks", l.Name)
			}
		}
	}
	if sfb != 3 {
		t.Errorf("%d SFB layers, want 3 (fc6, fc7, fc8)", sfb)
	}
	if ps != 16 {
		t.Errorf("%d PS layers, want 16 conv", ps)
	}
}

func TestForceSchemeDisablesHybComm(t *testing.T) {
	co := vggCoordinator(8)
	ps := PS
	co.ForceScheme(&ps)
	for _, p := range co.Plan() {
		if p.Scheme != PS {
			t.Fatalf("forced PS but layer %d picked %v", p.Layer, p.Scheme)
		}
	}
	co.ForceScheme(nil)
	summary := co.SchemeSummary()
	if !strings.Contains(summary, "SFB") {
		t.Fatalf("after clearing force, summary %q should mention SFB", summary)
	}
}

func TestOverrideLayer(t *testing.T) {
	co := vggCoordinator(8)
	fc6 := co.Model().Layer("fc6")
	var fc6Idx int
	for i := range co.Model().Layers {
		if &co.Model().Layers[i] == fc6 {
			fc6Idx = i
		}
	}
	co.OverrideLayer(fc6Idx, AdamSF)
	if got := co.BestScheme(fc6Idx); got != AdamSF {
		t.Fatalf("override ignored: %v", got)
	}
}

// GoogLeNet at 16 nodes, batch 128: the plan must be all-PS
// ("Poseidon reduces to PS when training GoogLeNet on 16 nodes").
func TestPlanGoogLeNet16NodesAllPS(t *testing.T) {
	m := nn.GoogLeNet()
	co := NewCoordinator(m, ClusterShape{Workers: 16, Servers: 16, Batch: 128})
	for _, p := range co.Plan() {
		if p.Scheme != PS {
			t.Fatalf("layer %d picked %v, want PS", p.Layer, p.Scheme)
		}
	}
}

func TestCoordinatorPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCoordinator(nn.VGG19(), ClusterShape{Workers: 0, Servers: 1})
}
