package poseidon

import (
	"testing"
	"testing/quick"

	"repro/internal/nn"
)

func TestFineGrainedChunkSizes(t *testing.T) {
	m := nn.VGG19()
	p := NewPlacement(m, 8, FineGrained, DefaultChunkBytes)
	var total int64
	for li, cs := range p.ByLayer {
		var layerBytes int64
		for _, c := range cs {
			if c.Bytes <= 0 || c.Bytes > DefaultChunkBytes {
				t.Fatalf("layer %d chunk %d has bad size %d", li, c.Index, c.Bytes)
			}
			if c.Server < 0 || c.Server >= 8 {
				t.Fatalf("chunk on bad server %d", c.Server)
			}
			layerBytes += c.Bytes
		}
		if layerBytes != m.Layers[li].ParamBytes() {
			t.Fatalf("layer %d chunks sum to %d, want %d", li, layerBytes, m.Layers[li].ParamBytes())
		}
		total += layerBytes
	}
	if total != m.ParamBytes() {
		t.Fatalf("placement covers %d bytes, want %d", total, m.ParamBytes())
	}
}

// Poseidon's placement must be near-balanced on VGG19; TF's coarse
// per-tensor placement must be badly imbalanced (fc6 alone is 392 MB).
func TestImbalanceFineVsCoarse(t *testing.T) {
	m := nn.VGG19()
	fine := NewPlacement(m, 8, FineGrained, DefaultChunkBytes)
	coarse := NewPlacement(m, 8, CoarsePerTensor, DefaultChunkBytes)
	if fi := fine.Imbalance(); fi > 1.10 {
		t.Errorf("fine-grained imbalance = %.3f, want ≤1.10", fi)
	}
	if ci := coarse.Imbalance(); ci < 2.0 {
		t.Errorf("coarse imbalance = %.3f, want ≥2 (fc6 hot spot)", ci)
	}
}

func TestCoarseOneChunkPerLayer(t *testing.T) {
	m := nn.VGG19()
	p := NewPlacement(m, 4, CoarsePerTensor, DefaultChunkBytes)
	for li, cs := range p.ByLayer {
		if m.Layers[li].HasParams() && len(cs) != 1 {
			t.Fatalf("layer %d has %d chunks under coarse placement", li, len(cs))
		}
	}
}

// Property: every placement covers all parameter bytes exactly once and
// ServerBytes sums to the model size, for any server count/chunk size.
func TestPlacementCoverageProperty(t *testing.T) {
	m := nn.CIFARQuick()
	f := func(serversRaw, chunkRaw uint8) bool {
		servers := 1 + int(serversRaw)%32
		chunk := int64(1+int(chunkRaw)) * 512
		p := NewPlacement(m, servers, FineGrained, chunk)
		var sum int64
		for _, b := range p.ServerBytes {
			sum += b
		}
		if sum != m.ParamBytes() {
			return false
		}
		var chunkSum int64
		for _, cs := range p.ByLayer {
			for _, c := range cs {
				chunkSum += c.Bytes
			}
		}
		return chunkSum == m.ParamBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkKeyUnique(t *testing.T) {
	m := nn.VGG19()
	p := NewPlacement(m, 8, FineGrained, DefaultChunkBytes)
	seen := make(map[string]bool)
	for _, cs := range p.ByLayer {
		for _, c := range cs {
			if seen[c.Key()] {
				t.Fatalf("duplicate chunk key %s", c.Key())
			}
			seen[c.Key()] = true
		}
	}
	if len(seen) != p.NumChunks() {
		t.Fatalf("NumChunks=%d, keys=%d", p.NumChunks(), len(seen))
	}
}

func TestPlacementPanicsOnZeroServers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPlacement(nn.CIFARQuick(), 0, FineGrained, DefaultChunkBytes)
}
