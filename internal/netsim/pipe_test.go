package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPipeSingleTransfer(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPipeNetwork(eng, 2, 100) // 100 B/s
	var done float64
	p.Start(0, 1, 200, func() { done = eng.Now() })
	eng.Run()
	if !almost(done, 2+p.LatencySec, 1e-9) {
		t.Fatalf("done = %v, want 2+lat", done)
	}
}

func TestPipeEgressSerialization(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPipeNetwork(eng, 3, 100)
	var t1, t2 float64
	p.Start(0, 1, 100, func() { t1 = eng.Now() })
	p.Start(0, 2, 100, func() { t2 = eng.Now() })
	eng.Run()
	// FIFO on node 0's egress: first message at 1s, second at 2s.
	if !almost(t1, 1+p.LatencySec, 1e-9) || !almost(t2, 2+p.LatencySec, 1e-9) {
		t.Fatalf("t1=%v t2=%v", t1, t2)
	}
}

func TestPipeIncastSerialization(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPipeNetwork(eng, 4, 100)
	var last float64
	for src := 0; src < 3; src++ {
		p.Start(src, 3, 100, func() {
			if eng.Now() > last {
				last = eng.Now()
			}
		})
	}
	eng.Run()
	// Node 3's ingress serves 300 bytes at 100 B/s.
	if !almost(last, 3+p.LatencySec, 1e-9) {
		t.Fatalf("last = %v, want 3+lat", last)
	}
}

// Cut-through: a message's ingress service can start while its egress is
// still transmitting, so an uncontended transfer costs bytes/bw once,
// not twice.
func TestPipeCutThrough(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPipeNetwork(eng, 2, 100)
	var done float64
	p.Start(0, 1, 100, func() { done = eng.Now() })
	eng.Run()
	if done > 1+p.LatencySec+1e-9 {
		t.Fatalf("store-and-forward double-charged: %v", done)
	}
}

// Head-of-line decoupling: a sender blocked on a hot receiver does not
// delay its messages to a cold receiver beyond its own egress time.
func TestPipeNoHeadOfLineAcrossReceivers(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPipeNetwork(eng, 4, 100)
	// Pre-load node 2's ingress with a big transfer from node 1.
	p.Start(1, 2, 1000, nil)
	var hot, cold float64
	p.Start(0, 2, 100, func() { hot = eng.Now() })  // queues behind 10s of ingress
	p.Start(0, 3, 100, func() { cold = eng.Now() }) // must not wait for it
	eng.Run()
	if cold > 2+p.LatencySec+1e-9 {
		t.Fatalf("cold-path message delayed to %v by hot receiver", cold)
	}
	if hot < 10 {
		t.Fatalf("hot-path message finished too early: %v", hot)
	}
}

func TestPipeLoopbackAndCounters(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPipeNetwork(eng, 2, 100)
	fired := false
	p.Start(0, 0, 1_000_000, func() { fired = true })
	p.Start(0, 1, 500, nil)
	eng.Run()
	if !fired {
		t.Fatal("loopback never delivered")
	}
	if p.Node(0).BytesSent != 500 || p.Node(1).BytesRecv != 500 {
		t.Fatalf("counters: sent=%d recv=%d", p.Node(0).BytesSent, p.Node(1).BytesRecv)
	}
	p.ResetCounters()
	if p.Node(0).BytesSent != 0 {
		t.Fatal("ResetCounters failed")
	}
	if p.NumNodes() != 2 {
		t.Fatal("NumNodes wrong")
	}
}

func TestPipeSetBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPipeNetwork(eng, 2, 100)
	p.SetBandwidth(0, 50)
	var done float64
	p.Start(0, 1, 100, func() { done = eng.Now() })
	eng.Run()
	if !almost(done, 2+p.LatencySec, 1e-9) {
		t.Fatalf("done = %v, want 2+lat at halved egress", done)
	}
}

// Property: pipe and fluid models agree on the makespan of a one-shot
// all-to-all shuffle within roughly one extra message slot (they are
// different sharing disciplines — FIFO store-and-forward vs max-min
// fluid — over identical aggregate capacity, so the pipe model can trail
// by up to ~bytes/bw of scheduling slack per hop).
func TestPipeVsFluidAllToAllProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		bytes := int64(1000 + r.Intn(5000))

		run := func(fab Fabric, eng *sim.Engine) float64 {
			var last float64
			for s := 0; s < n; s++ {
				for d := 0; d < n; d++ {
					if s == d {
						continue
					}
					fab.Start(s, d, bytes, func() {
						if eng.Now() > last {
							last = eng.Now()
						}
					})
				}
			}
			eng.Run()
			return last
		}
		e1 := sim.NewEngine()
		pipe := run(NewPipeNetwork(e1, n, 1000), e1)
		e2 := sim.NewEngine()
		fluid := run(NewNetwork(e2, n, 1000), e2)
		slack := float64(bytes)/1000 + 0.01*fluid
		return math.Abs(pipe-fluid) <= 0.5*fluid+2*slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Work conservation: the makespan of k messages out of one node is
// exactly k·bytes/bw regardless of destinations.
func TestPipeWorkConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(8)
		eng := sim.NewEngine()
		p := NewPipeNetwork(eng, k+1, 500)
		p.LatencySec = 0
		bytes := int64(100 + r.Intn(900))
		var last float64
		for i := 1; i <= k; i++ {
			p.Start(0, i, bytes, func() {
				if eng.Now() > last {
					last = eng.Now()
				}
			})
		}
		eng.Run()
		want := float64(int64(k)*bytes) / 500
		return almost(last, want, 1e-9*want+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
