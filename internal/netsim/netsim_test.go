package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleFlowTime(t *testing.T) {
	eng := sim.NewEngine()
	nw := NewNetwork(eng, 2, Gbps(10)) // 1.25e9 B/s
	var done float64
	nw.Send(0, 1, 1_250_000_000, func() { done = eng.Now() })
	eng.Run()
	want := 1.0 + nw.LatencySec
	if !almost(done, want, 1e-6) {
		t.Fatalf("done at %v, want %v", done, want)
	}
}

func TestGbpsConversion(t *testing.T) {
	if Gbps(8) != 1e9 {
		t.Fatalf("Gbps(8) = %v", Gbps(8))
	}
}

func TestTwoFlowsShareEgress(t *testing.T) {
	eng := sim.NewEngine()
	nw := NewNetwork(eng, 3, 100) // 100 B/s NICs
	var t1, t2 float64
	nw.Send(0, 1, 100, func() { t1 = eng.Now() })
	nw.Send(0, 2, 100, func() { t2 = eng.Now() })
	eng.Run()
	// Both flows share node 0's egress (50 B/s each) → 2s each.
	if !almost(t1, 2+nw.LatencySec, 1e-6) || !almost(t2, 2+nw.LatencySec, 1e-6) {
		t.Fatalf("t1=%v t2=%v, want 2+lat", t1, t2)
	}
}

func TestIngressBottleneck(t *testing.T) {
	eng := sim.NewEngine()
	nw := NewNetwork(eng, 3, 100)
	var t1, t2 float64
	// Two senders into one receiver: ingress of node 2 is the bottleneck.
	nw.Send(0, 2, 100, func() { t1 = eng.Now() })
	nw.Send(1, 2, 100, func() { t2 = eng.Now() })
	eng.Run()
	if !almost(t1, 2+nw.LatencySec, 1e-6) || !almost(t2, 2+nw.LatencySec, 1e-6) {
		t.Fatalf("t1=%v t2=%v", t1, t2)
	}
}

// Max-min: a flow capped by a busy link leaves spare capacity to others.
func TestMaxMinRedistribution(t *testing.T) {
	eng := sim.NewEngine()
	nw := NewNetwork(eng, 4, 100)
	// Flows: A: 0→2, B: 1→2 (share node 2 ingress at 50 each);
	// C: 1→3 — node 1 egress carries B and C. Water-filling: B is fixed
	// at 50 by node 2's ingress, so C gets node 1's remaining 50... then
	// both links give 50. With equal caps C gets 50, not 33.
	ta := nw.Send(0, 2, 1000, nil)
	tb := nw.Send(1, 2, 1000, nil)
	tc := nw.Send(1, 3, 1000, nil)
	eng.RunUntil(0.001)
	if !almost(ta.Rate(), 50, 1e-9) || !almost(tb.Rate(), 50, 1e-9) || !almost(tc.Rate(), 50, 1e-9) {
		t.Fatalf("rates = %v %v %v, want 50 50 50", ta.Rate(), tb.Rate(), tc.Rate())
	}
	eng.Run()
}

func TestRateReshapedOnCompletion(t *testing.T) {
	eng := sim.NewEngine()
	nw := NewNetwork(eng, 3, 100)
	var t1, t2 float64
	nw.Send(0, 1, 50, func() { t1 = eng.Now() })  // shares egress until done
	nw.Send(0, 2, 150, func() { t2 = eng.Now() }) // then gets full rate
	eng.Run()
	// Phase 1: both at 50 B/s for 1s → flow1 done (50B), flow2 has 100B left.
	// Phase 2: flow2 alone at 100 B/s → 1s more. Total 2s.
	if !almost(t1, 1+nw.LatencySec, 1e-6) {
		t.Fatalf("t1 = %v", t1)
	}
	if !almost(t2, 2+nw.LatencySec, 1e-6) {
		t.Fatalf("t2 = %v", t2)
	}
}

func TestLoopbackBypassesNIC(t *testing.T) {
	eng := sim.NewEngine()
	nw := NewNetwork(eng, 2, 100)
	var done bool
	nw.Send(0, 0, 1_000_000, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("loopback flow never completed")
	}
	if nw.Node(0).BytesSent != 0 || nw.Node(0).BytesRecv != 0 {
		t.Fatal("loopback flow must not count as NIC traffic")
	}
}

func TestTrafficAccounting(t *testing.T) {
	eng := sim.NewEngine()
	nw := NewNetwork(eng, 3, 1000)
	nw.Send(0, 1, 500, nil)
	nw.Send(1, 2, 300, nil)
	eng.Run()
	if nw.Node(0).BytesSent != 500 || nw.Node(1).BytesRecv != 500 {
		t.Fatal("flow 0→1 accounting wrong")
	}
	if nw.Node(1).BytesSent != 300 || nw.Node(2).BytesRecv != 300 {
		t.Fatal("flow 1→2 accounting wrong")
	}
	if nw.TotalBytes() != 800 {
		t.Fatalf("TotalBytes = %d", nw.TotalBytes())
	}
	nw.ResetCounters()
	if nw.TotalBytes() != 0 {
		t.Fatal("ResetCounters failed")
	}
}

func TestSetBandwidthMidFlow(t *testing.T) {
	eng := sim.NewEngine()
	nw := NewNetwork(eng, 2, 100)
	var done float64
	nw.Send(0, 1, 200, func() { done = eng.Now() })
	eng.At(1, func() { nw.SetBandwidth(0, 50) }) // halve after 100B sent
	eng.Run()
	// 100B at 100 B/s (1s) + 100B at 50 B/s (2s) = 3s.
	if !almost(done, 3+nw.LatencySec, 1e-5) {
		t.Fatalf("done = %v, want 3+lat", done)
	}
}

func TestZeroByteSend(t *testing.T) {
	eng := sim.NewEngine()
	nw := NewNetwork(eng, 2, 100)
	var done float64
	nw.Send(0, 1, 0, func() { done = eng.Now() })
	eng.Run()
	if !almost(done, nw.LatencySec, 1e-9) {
		t.Fatalf("done = %v", done)
	}
}

// Property: total transfer time of N equal flows from one source is
// N·bytes/capacity regardless of N (work conservation on the egress).
func TestWorkConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		eng := sim.NewEngine()
		nw := NewNetwork(eng, n+1, 1000)
		nw.LatencySec = 0
		bytes := int64(100 + r.Intn(1000))
		var last float64
		for i := 1; i <= n; i++ {
			nw.Send(0, i, bytes, func() {
				if eng.Now() > last {
					last = eng.Now()
				}
			})
		}
		eng.Run()
		want := float64(int64(n)*bytes) / 1000
		return almost(last, want, 1e-6*want+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: flow completion callbacks never fire before the ideal
// (uncontended) transfer time.
func TestNoFlowFinishesEarlyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		n := 2 + r.Intn(5)
		nw := NewNetwork(eng, n, 500)
		ok := true
		for i := 0; i < 10; i++ {
			src := r.Intn(n)
			dst := (src + 1 + r.Intn(n-1)) % n
			bytes := int64(1 + r.Intn(2000))
			ideal := float64(bytes)/500 + nw.LatencySec
			start := eng.Now()
			nw.Send(src, dst, bytes, func() {
				if eng.Now()-start < ideal-1e-9 {
					ok = false
				}
			})
		}
		eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
