package netsim

import "repro/internal/sim"

// Fabric is the messaging surface the performance engine runs on. Both
// the fluid max-min Network and the O(1) PipeNetwork implement it, so
// experiments can validate one against the other.
type Fabric interface {
	// Start begins a transfer; onDone fires when the last byte arrives.
	Start(src, dst int, bytes int64, onDone func())
	NumNodes() int
	Node(i int) *Node
	ResetCounters()
}

// Start adapts Network.Send to the Fabric interface.
func (nw *Network) Start(src, dst int, bytes int64, onDone func()) {
	nw.Send(src, dst, bytes, onDone)
}

// PipeNetwork is a store-and-forward network model with O(1) cost per
// message: every NIC direction is a FIFO pipe draining at its line
// rate, and a message occupies its source egress pipe and destination
// ingress pipe with cut-through overlap (ingress service may begin as
// soon as egress service begins, modeling packet-level pipelining).
//
// Compared to the fluid max-min Network this trades per-flow fairness
// for speed; aggregate NIC busy time — which determines saturation,
// hot spots, and everything the paper's figures measure — is identical,
// and pipe_test.go checks the two models agree on completion times for
// the collective patterns the engine generates.
type PipeNetwork struct {
	Eng        *sim.Engine
	LatencySec float64
	// LoopbackBps serves src==dst messages without touching the NIC.
	LoopbackBps float64

	nodes       []*Node
	egressFree  []float64
	ingressFree []float64
}

// NewPipeNetwork creates n nodes with symmetric NIC bandwidth (bytes/s).
func NewPipeNetwork(eng *sim.Engine, n int, nicBps float64) *PipeNetwork {
	p := &PipeNetwork{
		Eng:         eng,
		LatencySec:  40e-6,
		LoopbackBps: 20e9,
		egressFree:  make([]float64, n),
		ingressFree: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		p.nodes = append(p.nodes, &Node{ID: i, EgressBps: nicBps, IngressBps: nicBps})
	}
	return p
}

// NumNodes returns the node count.
func (p *PipeNetwork) NumNodes() int { return len(p.nodes) }

// Node returns node i.
func (p *PipeNetwork) Node(i int) *Node { return p.nodes[i] }

// ResetCounters zeroes traffic accounting.
func (p *PipeNetwork) ResetCounters() {
	for _, n := range p.nodes {
		n.BytesSent = 0
		n.BytesRecv = 0
	}
}

// SetBandwidth changes node i's NIC rate for future messages.
func (p *PipeNetwork) SetBandwidth(i int, bps float64) {
	p.nodes[i].EgressBps = bps
	p.nodes[i].IngressBps = bps
}

// Start schedules a transfer of bytes from src to dst; onDone fires at
// delivery. Messages on the same pipes are served FIFO in Start order.
func (p *PipeNetwork) Start(src, dst int, bytes int64, onDone func()) {
	now := p.Eng.Now()
	if src == dst {
		if onDone != nil {
			// Pooled, handle-free scheduling: delivery callbacks are never
			// canceled, and the engine recycles the event after firing.
			p.Eng.PostAfter(float64(bytes)/p.LoopbackBps+p.LatencySec, onDone)
		}
		return
	}
	p.nodes[src].BytesSent += bytes
	p.nodes[dst].BytesRecv += bytes

	eStart := max(now, p.egressFree[src])
	eEnd := eStart + float64(bytes)/p.nodes[src].EgressBps
	p.egressFree[src] = eEnd

	iStart := max(eStart, p.ingressFree[dst])
	iEnd := iStart + float64(bytes)/p.nodes[dst].IngressBps
	p.ingressFree[dst] = iEnd

	done := max(eEnd, iEnd) + p.LatencySec
	if onDone != nil {
		p.Eng.Post(done, onDone)
	}
}
