// Package netsim models a switched Ethernet cluster at flow level for
// the performance plane of the Poseidon reproduction.
//
// Each node has a full-duplex NIC with independent egress and ingress
// capacity (the switch fabric itself is assumed non-blocking, as is
// standard for ToR-switched GPU clusters and implicit in the paper's
// Table 1 cost model). Active flows share NIC capacity max-min fairly,
// computed by progressive water-filling whenever the flow set changes.
// This reproduces the phenomena the paper's evaluation measures:
// saturation under large transfers, bursty hot spots on imbalanced
// servers (Fig. 10), and the effect of `tc`-style bandwidth caps
// (Fig. 8).
package netsim

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Gbps converts gigabits/second to bytes/second.
func Gbps(g float64) float64 { return g * 1e9 / 8 }

// Node is one machine's NIC plus its traffic accounting.
type Node struct {
	ID         int
	EgressBps  float64 // bytes/second
	IngressBps float64 // bytes/second

	// Cumulative traffic counters (bytes over the NIC; loopback flows
	// are excluded).
	BytesSent int64
	BytesRecv int64
}

// Flow is an in-flight transfer between two nodes.
type Flow struct {
	Src, Dst  int
	remaining float64 // bytes still to transmit
	rate      float64 // current bytes/second
	onDone    func()
	net       *Network
	done      bool
}

// Remaining returns the bytes not yet transmitted.
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate returns the current max-min fair rate in bytes/second.
func (f *Flow) Rate() float64 { return f.rate }

// Network is a set of nodes and the active flows among them.
type Network struct {
	Eng *sim.Engine

	// LatencySec is the fixed one-way message latency added after the
	// last byte is transmitted (propagation + switching + stack).
	LatencySec float64

	// LoopbackBps is the rate for src==dst flows (shared-memory moves on
	// a colocated worker/server). They bypass the NIC and its counters.
	LoopbackBps float64

	nodes      []*Node
	flows      map[*Flow]struct{}
	lastUpdate float64
	completion *sim.Event
}

// NewNetwork creates n nodes each with the given symmetric NIC
// bandwidth (bytes/second).
func NewNetwork(eng *sim.Engine, n int, nicBps float64) *Network {
	nw := &Network{
		Eng:         eng,
		LatencySec:  40e-6,
		LoopbackBps: 20e9, // ~20 GB/s memcpy for colocated shards
		flows:       make(map[*Flow]struct{}),
	}
	for i := 0; i < n; i++ {
		nw.nodes = append(nw.nodes, &Node{ID: i, EgressBps: nicBps, IngressBps: nicBps})
	}
	return nw
}

// Node returns node i.
func (nw *Network) Node(i int) *Node { return nw.nodes[i] }

// NumNodes returns the node count.
func (nw *Network) NumNodes() int { return len(nw.nodes) }

// ActiveFlows returns the number of in-flight flows.
func (nw *Network) ActiveFlows() int { return len(nw.flows) }

// Send starts a transfer of size bytes from src to dst; onDone fires
// when the last byte has arrived (transmission + latency). Zero-byte
// sends complete after the latency alone.
func (nw *Network) Send(src, dst int, bytes int64, onDone func()) *Flow {
	if src < 0 || src >= len(nw.nodes) || dst < 0 || dst >= len(nw.nodes) {
		panic(fmt.Sprintf("netsim: bad endpoints %d->%d", src, dst))
	}
	if bytes < 0 {
		panic("netsim: negative size")
	}
	f := &Flow{Src: src, Dst: dst, remaining: float64(bytes), onDone: onDone, net: nw}
	if src == dst {
		// Loopback: fixed-rate local copy, no NIC contention.
		d := float64(bytes)/nw.LoopbackBps + nw.LatencySec
		nw.Eng.After(d, func() {
			f.done = true
			if onDone != nil {
				onDone()
			}
		})
		return f
	}
	nw.advance()
	nw.flows[f] = struct{}{}
	nw.nodes[src].BytesSent += bytes
	nw.nodes[dst].BytesRecv += bytes
	nw.reshare()
	return f
}

// advance progresses all flows' remaining bytes to the current time at
// their last computed rates.
func (nw *Network) advance() {
	now := nw.Eng.Now()
	dt := now - nw.lastUpdate
	if dt > 0 {
		for f := range nw.flows {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
	}
	nw.lastUpdate = now
}

// reshare recomputes max-min fair rates by progressive filling and
// schedules the next completion event.
func (nw *Network) reshare() {
	if nw.completion != nil {
		nw.completion.Cancel()
		nw.completion = nil
	}
	if len(nw.flows) == 0 {
		return
	}
	// Links: egress[i] and ingress[i] for each node.
	type link struct {
		cap   float64
		count int
	}
	eg := make([]link, len(nw.nodes))
	ig := make([]link, len(nw.nodes))
	for i, n := range nw.nodes {
		eg[i].cap = n.EgressBps
		ig[i].cap = n.IngressBps
	}
	unfixed := make(map[*Flow]struct{}, len(nw.flows))
	for f := range nw.flows {
		unfixed[f] = struct{}{}
		eg[f.Src].count++
		ig[f.Dst].count++
	}
	for len(unfixed) > 0 {
		// Find the bottleneck link: minimum fair share among links with
		// unfixed flows.
		share := math.Inf(1)
		for i := range eg {
			if eg[i].count > 0 {
				if s := eg[i].cap / float64(eg[i].count); s < share {
					share = s
				}
			}
			if ig[i].count > 0 {
				if s := ig[i].cap / float64(ig[i].count); s < share {
					share = s
				}
			}
		}
		if math.IsInf(share, 1) {
			break
		}
		// Fix every unfixed flow crossing a link at that share.
		progressed := false
		for f := range unfixed {
			egShare := eg[f.Src].cap / float64(eg[f.Src].count)
			igShare := ig[f.Dst].cap / float64(ig[f.Dst].count)
			if egShare <= share*(1+1e-12) || igShare <= share*(1+1e-12) {
				f.rate = share
				delete(unfixed, f)
				eg[f.Src].cap -= share
				eg[f.Src].count--
				ig[f.Dst].cap -= share
				ig[f.Dst].count--
				if eg[f.Src].cap < 0 {
					eg[f.Src].cap = 0
				}
				if ig[f.Dst].cap < 0 {
					ig[f.Dst].cap = 0
				}
				progressed = true
			}
		}
		if !progressed {
			// Numerical corner: force the strict minimum.
			for f := range unfixed {
				f.rate = share
				delete(unfixed, f)
			}
		}
	}
	// Next completion.
	first := math.Inf(1)
	for f := range nw.flows {
		if f.rate <= 0 {
			continue
		}
		t := f.remaining / f.rate
		if t < first {
			first = t
		}
	}
	if math.IsInf(first, 1) {
		return
	}
	nw.completion = nw.Eng.After(first, nw.complete)
}

// complete retires every flow that has finished and reshapes the rest.
func (nw *Network) complete() {
	nw.advance()
	var finished []*Flow
	for f := range nw.flows {
		if f.remaining <= 1e-6 {
			finished = append(finished, f)
		}
	}
	if len(finished) == 0 {
		// Floating-point underflow can leave the nearest flow with a
		// vanishing but nonzero remainder; force-retire it so the
		// simulation always progresses.
		best := math.Inf(1)
		var bestF *Flow
		for f := range nw.flows {
			if f.rate <= 0 {
				continue
			}
			if t := f.remaining / f.rate; t < best {
				best = t
				bestF = f
			}
		}
		if bestF != nil {
			finished = append(finished, bestF)
		}
	}
	for _, f := range finished {
		delete(nw.flows, f)
		f.done = true
		f.remaining = 0
	}
	nw.reshare()
	// Deliver after the fixed latency; ordering among equal-time
	// deliveries follows scheduling order (deterministic).
	for _, f := range finished {
		cb := f.onDone
		if cb != nil {
			nw.Eng.After(nw.LatencySec, cb)
		}
	}
}

// SetBandwidth changes node i's NIC to the given symmetric bytes/second
// rate (like `tc` in the paper's Section 5.2) and reshapes active flows.
func (nw *Network) SetBandwidth(i int, bps float64) {
	nw.advance()
	nw.nodes[i].EgressBps = bps
	nw.nodes[i].IngressBps = bps
	nw.reshare()
}

// ResetCounters zeroes all traffic accounting (e.g., after warmup).
func (nw *Network) ResetCounters() {
	for _, n := range nw.nodes {
		n.BytesSent = 0
		n.BytesRecv = 0
	}
}

// TotalBytes returns cluster-wide bytes sent over NICs.
func (nw *Network) TotalBytes() int64 {
	var sum int64
	for _, n := range nw.nodes {
		sum += n.BytesSent
	}
	return sum
}
