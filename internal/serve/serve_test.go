package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/nn/autodiff"
	"repro/internal/snapshot"
	"repro/internal/tensor"
)

func mlpBuilder(rng *rand.Rand) *autodiff.Network {
	return autodiff.MLPNet(8, []int{16}, 3, rng)
}

// storeWith returns a store holding one capture at (iter, epoch) with
// deterministic parameters derived from seed.
func storeWith(iter, epoch int, seed int64) *snapshot.Store {
	st := snapshot.NewStore(mlpBuilder, 1)
	rng := rand.New(rand.NewSource(seed))
	net := mlpBuilder(rng)
	for _, p := range net.Params() {
		for i := range p.Data {
			p.Data[i] = float32(rng.NormFloat64())
		}
	}
	st.Capture(iter, epoch, net.Params())
	return st
}

func postPredict(t *testing.T, url, tenant string, instances [][]float32) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(predictRequest{Instances: instances})
	req, err := http.NewRequest("POST", url+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, out
}

// TestPredictMatchesDirectForward demands the HTTP path returns exactly
// what a local forward + softmax over the same snapshot computes —
// including the JSON round trip, which is exact for float32.
func TestPredictMatchesDirectForward(t *testing.T) {
	st := storeWith(7, 2, 99)
	g := New(st, Options{MaxDelay: time.Millisecond})
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	rng := rand.New(rand.NewSource(5))
	instances := make([][]float32, 3)
	for i := range instances {
		row := make([]float32, st.Features())
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
		instances[i] = row
	}

	resp, body := postPredict(t, srv.URL, "", instances)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d %s", resp.StatusCode, body)
	}
	var got predictResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Model.Iter != 7 || got.Model.Epoch != 2 {
		t.Fatalf("model version = %+v, want (7, 2)", got.Model)
	}
	if len(got.Predictions) != 3 {
		t.Fatalf("%d predictions, want 3", len(got.Predictions))
	}

	// Local reference: one forward pass over the same snapshot.
	x := tensor.NewMatrix(len(instances), st.Features())
	for i, row := range instances {
		copy(x.Row(i), row)
	}
	logits := tensor.NewMatrix(0, 0)
	if err := st.Latest().PredictInto(logits, x); err != nil {
		t.Fatal(err)
	}
	probs := tensor.NewMatrix(0, 0)
	autodiff.SoftmaxInto(probs, logits)
	for i, p := range got.Predictions {
		want := probs.Row(i)
		if len(p.Probs) != len(want) {
			t.Fatalf("row %d: %d probs, want %d", i, len(p.Probs), len(want))
		}
		for j := range want {
			if p.Probs[j] != want[j] {
				t.Fatalf("row %d prob %d: served %v, reference %v", i, j, p.Probs[j], want[j])
			}
		}
		arg := 0
		for j := range want {
			if want[j] > want[arg] {
				arg = j
			}
		}
		if p.Label != arg {
			t.Fatalf("row %d: label %d, reference argmax %d", i, p.Label, arg)
		}
	}
}

// TestMicroBatchCoalesces fires concurrent single-row requests through
// a wide window and demands they ran in fewer forward passes than
// requests, with every row answered.
func TestMicroBatchCoalesces(t *testing.T) {
	st := storeWith(1, 0, 3)
	mtr := metrics.NewComm()
	g := New(st, Options{MaxDelay: 25 * time.Millisecond, MaxBatch: 64, Metrics: mtr})
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	const reqs = 16
	row := make([]float32, st.Features())
	var wg sync.WaitGroup
	errs := make(chan string, reqs)
	for i := 0; i < reqs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postPredict(t, srv.URL, "", [][]float32{row})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("%d %s", resp.StatusCode, body)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	snap := mtr.Snapshot()
	if snap.Serve == nil {
		t.Fatal("no serve metrics recorded")
	}
	if snap.Serve.Predictions != reqs {
		t.Fatalf("predictions = %d, want %d", snap.Serve.Predictions, reqs)
	}
	if snap.Serve.Batches >= reqs {
		t.Fatalf("batches = %d for %d concurrent requests: no coalescing", snap.Serve.Batches, reqs)
	}
	if snap.Serve.Latency.Count != reqs {
		t.Fatalf("latency count = %d, want %d", snap.Serve.Latency.Count, reqs)
	}
}

// TestTenantRateLimit starves one tenant's bucket and demands 429s for
// it while another tenant sails through.
func TestTenantRateLimit(t *testing.T) {
	st := storeWith(1, 0, 3)
	mtr := metrics.NewComm()
	g := New(st, Options{TenantRPS: 0.001, TenantBurst: 2, MaxDelay: time.Millisecond, Metrics: mtr})
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	row := [][]float32{make([]float32, st.Features())}
	for i := 0; i < 2; i++ {
		if resp, body := postPredict(t, srv.URL, "greedy", row); resp.StatusCode != http.StatusOK {
			t.Fatalf("greedy burst request %d: %d %s", i, resp.StatusCode, body)
		}
	}
	resp, _ := postPredict(t, srv.URL, "greedy", row)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget request = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if resp, body := postPredict(t, srv.URL, "paced", row); resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant punished for greedy's 429: %d %s", resp.StatusCode, body)
	}
	if got := mtr.Snapshot().Serve.RateLimited; got != 1 {
		t.Fatalf("rate_limited = %d, want 1", got)
	}
}

// blockingSource parks Latest until released — it holds a request
// inside the admission gate so shedding can be tested deterministically.
type blockingSource struct {
	st      *snapshot.Store
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (b *blockingSource) Latest() *snapshot.Model {
	b.once.Do(func() {
		close(b.entered)
		<-b.release
	})
	return b.st.Latest()
}

// TestInFlightShed fills the single admission slot with a parked
// request and demands the next one is shed with 503 + Retry-After.
func TestInFlightShed(t *testing.T) {
	src := &blockingSource{
		st:      storeWith(1, 0, 3),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	g := New(src, Options{MaxInFlight: 1, MaxDelay: time.Millisecond})
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	row := [][]float32{make([]float32, 8)}
	done := make(chan int, 1)
	go func() {
		resp, _ := postPredict(t, srv.URL, "", row)
		done <- resp.StatusCode
	}()
	<-src.entered // first request is admitted and parked
	resp, _ := postPredict(t, srv.URL, "spill", row)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	close(src.release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("parked request = %d, want 200", code)
	}
}

// TestDrainLifecycle: Drain flips predict and healthz to 503 while
// /v1/model and /metrics stay readable.
func TestDrainLifecycle(t *testing.T) {
	st := storeWith(4, 1, 3)
	g := New(st, Options{MaxDelay: time.Millisecond})
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	if resp, err := http.Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %v %v", resp.StatusCode, err)
	}
	g.Drain()
	row := [][]float32{make([]float32, st.Features())}
	if resp, _ := postPredict(t, srv.URL, "", row); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict during drain = %d, want 503", resp.StatusCode)
	}
	if resp, _ := http.Get(srv.URL + "/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", resp.StatusCode)
	}
	resp, err := http.Get(srv.URL + "/v1/model")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("model during drain: %v %v", resp.StatusCode, err)
	}
	var mv struct {
		Iter  int `json:"iter"`
		Epoch int `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if mv.Iter != 4 || mv.Epoch != 1 {
		t.Fatalf("model version = %+v, want (4, 1)", mv)
	}
	if resp, _ := http.Get(srv.URL + "/metrics"); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics during drain = %d, want 200", resp.StatusCode)
	}
}

// TestNoSnapshotYet: an empty source answers 503, not a panic.
func TestNoSnapshotYet(t *testing.T) {
	st := snapshot.NewStore(mlpBuilder, 1) // no capture
	g := New(st, Options{MaxDelay: time.Millisecond})
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	row := [][]float32{make([]float32, 8)}
	if resp, _ := postPredict(t, srv.URL, "", row); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict without snapshot = %d, want 503", resp.StatusCode)
	}
	if resp, _ := http.Get(srv.URL + "/v1/model"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("model without snapshot = %d, want 503", resp.StatusCode)
	}
}

// TestBadRequests: malformed JSON and wrong feature counts are 400s.
func TestBadRequests(t *testing.T) {
	st := storeWith(1, 0, 3)
	g := New(st, Options{MaxDelay: time.Millisecond})
	defer g.Close()
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/predict", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postPredict(t, srv.URL, "", [][]float32{{1, 2}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong feature count = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postPredict(t, srv.URL, "", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty instances = %d, want 400", resp.StatusCode)
	}
}

// BenchmarkPredictMicroBatch measures the batched tensor path under
// parallel callers — the serving-plane hot loop below the JSON layer.
// It reports p99-ms (gated by bench-trend -p99-budget) and allocs/op.
func BenchmarkPredictMicroBatch(b *testing.B) {
	st := storeWith(1, 0, 3)
	m := st.Latest()
	bat := newBatcher(16, 500*time.Microsecond, nil)
	defer bat.close()

	var mu sync.Mutex
	lats := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		probs := tensor.NewMatrix(0, 0)
		rows := [][]float32{make([]float32, m.Features())}
		for pb.Next() {
			t0 := time.Now()
			if err := bat.predict(m, rows, probs); err != nil {
				b.Error(err)
				return
			}
			d := time.Since(t0)
			mu.Lock()
			lats = append(lats, d)
			mu.Unlock()
		}
	})
	b.StopTimer()
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 := lats[len(lats)*99/100]
	b.ReportMetric(float64(p99)/1e6, "p99-ms")
}
