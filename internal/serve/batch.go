package serve

import (
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/nn/autodiff"
	"repro/internal/snapshot"
	"repro/internal/tensor"
)

// call is one request's stake in a micro-batch: the rows it brought,
// the snapshot it resolved, and the probability matrix the batcher
// fills before signaling ready.
type call struct {
	model *snapshot.Model
	rows  [][]float32
	probs *tensor.Matrix
	err   error
	ready chan struct{}
}

var callPool = sync.Pool{New: func() any {
	return &call{ready: make(chan struct{}, 1)}
}}

var matPool = sync.Pool{New: func() any { return tensor.NewMatrix(0, 0) }}

// batcher accumulates concurrent predict calls into micro-batches: the
// first arrival opens a window, and the batch executes when either
// maxBatch rows have gathered or maxDelay has passed — so a lone
// request pays at most maxDelay of extra latency while a burst
// amortizes one forward pass across every caller in the window.
//
// The collect loop owns all forward-pass scratch (input, logits,
// softmax), so steady-state serving allocates nothing on the tensor
// path regardless of concurrency.
type batcher struct {
	queue    chan *call
	maxBatch int
	maxDelay time.Duration
	stats    *metrics.ServeStats
	done     chan struct{}
}

func newBatcher(maxBatch int, maxDelay time.Duration, stats *metrics.ServeStats) *batcher {
	b := &batcher{
		queue:    make(chan *call, maxBatch*4),
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		stats:    stats,
		done:     make(chan struct{}),
	}
	go b.loop()
	return b
}

// predict blocks until the batcher has run the rows through m's
// replica and written row-wise softmax probabilities into probs.
// Must not be called after close(b.queue) — the gateway guarantees
// that by shutting the HTTP server down (no live handlers) first.
func (b *batcher) predict(m *snapshot.Model, rows [][]float32, probs *tensor.Matrix) error {
	c := callPool.Get().(*call)
	c.model, c.rows, c.probs, c.err = m, rows, probs, nil
	b.queue <- c
	<-c.ready
	err := c.err
	c.model, c.rows, c.probs, c.err = nil, nil, nil, nil
	callPool.Put(c)
	return err
}

// close ends the collect loop after the in-flight queue drains.
func (b *batcher) close() {
	close(b.queue)
	<-b.done
}

func (b *batcher) loop() {
	defer close(b.done)
	in := tensor.NewMatrix(0, 0)
	logits := tensor.NewMatrix(0, 0)
	probs := tensor.NewMatrix(0, 0)
	var batch []*call
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		first, ok := <-b.queue
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		rows := len(first.rows)
		timer.Reset(b.maxDelay)
	collect:
		for rows < b.maxBatch {
			select {
			case c, ok := <-b.queue:
				if !ok {
					break collect
				}
				batch = append(batch, c)
				rows += len(c.rows)
			case <-timer.C:
				break collect
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		b.flush(batch, in, logits, probs)
	}
}

// flush executes one window. Calls are grouped by the exact snapshot
// they resolved at admission — a capture landing mid-window must not
// retroactively change what an already-admitted request is served
// from — and each group runs as one forward pass.
func (b *batcher) flush(batch []*call, in, logits, probs *tensor.Matrix) {
	for start := 0; start < len(batch); {
		m := batch[start].model
		end := start + 1
		rows := len(batch[start].rows)
		for end < len(batch) && batch[end].model == m {
			rows += len(batch[end].rows)
			end++
		}
		group := batch[start:end]
		start = end

		in.Resize(rows, m.Features())
		r := 0
		for _, c := range group {
			for _, row := range c.rows {
				copy(in.Row(r), row)
				r++
			}
		}
		if err := m.PredictInto(logits, in); err != nil {
			for _, c := range group {
				c.err = err
				c.ready <- struct{}{}
			}
			continue
		}
		autodiff.SoftmaxInto(probs, logits)
		if b.stats != nil {
			b.stats.RecordBatch(rows)
		}
		r = 0
		for _, c := range group {
			c.probs.Resize(len(c.rows), probs.Cols)
			copy(c.probs.Data, probs.Data[r*probs.Cols:(r+len(c.rows))*probs.Cols])
			r += len(c.rows)
			c.ready <- struct{}{}
		}
	}
}
