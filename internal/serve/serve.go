// Package serve is the gateway of the serving plane: an HTTP API over
// the immutable snapshots a training session captures at round
// barriers, so one process trains continuously and serves predictions
// concurrently.
//
// The hot path is built for co-existence with training: requests
// coalesce into micro-batches (one forward pass per window), the
// tensor scratch is pooled (zero steady-state allocations below the
// JSON layer), per-tenant token buckets shed abusive callers with 429
// before they reach the model, and a bounded in-flight gate sheds
// overload with 503 + Retry-After instead of queueing without bound.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/rate"
	"repro/internal/snapshot"
	"repro/internal/tensor"
)

// Source is where the gateway gets the model: anything that can hand
// out the latest immutable snapshot. *poseidon.Session satisfies it.
type Source interface {
	Latest() *snapshot.Model
}

// Options tunes the gateway; zero values take the defaults noted.
type Options struct {
	MaxBatch      int           // micro-batch row cap (default 16)
	MaxDelay      time.Duration // micro-batch window (default 2ms)
	MaxInFlight   int           // concurrent admitted requests (default 256)
	TenantRPS     float64       // per-tenant sustained requests/sec (default 50; <0 = unlimited)
	TenantBurst   int           // per-tenant burst (default 2×RPS)
	TenantIdleTTL time.Duration // evict a tenant's limiter after this idle time (default 5m)
	MaxBodyBytes  int64         // request body cap (default 8MiB)
	Metrics       *metrics.Comm // registry serving /metrics (default: a private one)

	// ReplicaID names this gateway in the snapshot fleet; it is echoed
	// on responses (X-Poseidon-Replica) and in the metrics serve block.
	// Empty outside a fleet.
	ReplicaID string
	// Stale, when set, gates serving on snapshot freshness: it returns
	// the current lag in iterations and whether the gateway should shed
	// (503 + Retry-After) until the replica catches back up. A
	// *fleet.Puller's Status method has exactly this shape.
	Stale func() (lagIters int, shed bool)
}

func (o *Options) setDefaults() {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 16
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 2 * time.Millisecond
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 256
	}
	if o.TenantRPS == 0 {
		o.TenantRPS = 50
	}
	if o.TenantBurst <= 0 {
		o.TenantBurst = int(2 * o.TenantRPS)
		if o.TenantBurst < 1 {
			o.TenantBurst = 1
		}
	}
	if o.TenantIdleTTL <= 0 {
		o.TenantIdleTTL = 5 * time.Minute
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.Metrics == nil {
		o.Metrics = metrics.NewComm()
	}
}

type tenant struct {
	lim      *rate.Limiter
	lastSeen time.Time
}

// Gateway serves predictions from a Source's snapshots. Lifecycle:
// New → serve Handler() → Drain() (stop admitting) → http.Server
// Shutdown (in-flight handlers finish) → Close() (stop the batcher).
type Gateway struct {
	src      Source
	opts     Options
	stats    *metrics.ServeStats
	bat      *batcher
	inflight chan struct{}
	draining atomic.Bool

	mu      sync.Mutex
	tenants map[string]*tenant

	stopJanitor chan struct{}
	janitorDone chan struct{}
}

// New builds a gateway over src.
func New(src Source, opts Options) *Gateway {
	opts.setDefaults()
	g := &Gateway{
		src:         src,
		opts:        opts,
		stats:       opts.Metrics.Serve(),
		inflight:    make(chan struct{}, opts.MaxInFlight),
		tenants:     make(map[string]*tenant),
		stopJanitor: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	if opts.ReplicaID != "" {
		g.stats.SetReplica(opts.ReplicaID)
	}
	g.bat = newBatcher(opts.MaxBatch, opts.MaxDelay, g.stats)
	go g.janitor()
	return g
}

// Handler returns the gateway's route table.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", g.handlePredict)
	mux.HandleFunc("GET /v1/model", g.handleModel)
	mux.Handle("GET "+fleet.SnapshotPath, fleet.NewSnapshotHandler(g.src, g.stats))
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	return mux
}

// Drain stops admitting new predict requests (503 + Retry-After);
// already-admitted ones run to completion. Call before shutting the
// HTTP server down so the drain window completes every accepted
// request and drops none.
func (g *Gateway) Drain() { g.draining.Store(true) }

// Close stops the batcher and the tenant janitor. Only call once no
// handler can still be running (after http.Server.Shutdown).
func (g *Gateway) Close() {
	g.bat.close()
	close(g.stopJanitor)
	<-g.janitorDone
}

type predictRequest struct {
	Instances [][]float32 `json:"instances"`
}

type prediction struct {
	Label int       `json:"label"`
	Probs []float32 `json:"probs"`
}

type modelVersion struct {
	Iter  int `json:"iter"`
	Epoch int `json:"epoch"`
}

type predictResponse struct {
	Model       modelVersion `json:"model"`
	Predictions []prediction `json:"predictions"`
}

func (g *Gateway) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	g.stats.CountRequest()
	if g.draining.Load() {
		g.stats.CountShed()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if g.opts.Stale != nil {
		if lag, shed := g.opts.Stale(); shed {
			g.stats.CountStaleShed()
			w.Header().Set("Retry-After", "1")
			http.Error(w, fmt.Sprintf("snapshot is %d iterations stale", lag), http.StatusServiceUnavailable)
			return
		}
	}
	name := r.Header.Get(fleet.HeaderTenant)
	if name == "" {
		name = "default"
	}
	if !g.allowTenant(name) {
		g.stats.CountRateLimited()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "tenant rate limit exceeded", http.StatusTooManyRequests)
		return
	}
	select {
	case g.inflight <- struct{}{}:
		defer func() { <-g.inflight }()
	default:
		g.stats.CountShed()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "too many in-flight requests", http.StatusServiceUnavailable)
		return
	}

	var req predictRequest
	body := http.MaxBytesReader(w, r.Body, g.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		g.stats.CountError()
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Instances) == 0 {
		g.stats.CountError()
		http.Error(w, "bad request: no instances", http.StatusBadRequest)
		return
	}
	m := g.src.Latest()
	if m == nil {
		g.stats.CountShed()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "no snapshot captured yet", http.StatusServiceUnavailable)
		return
	}
	features := m.Features()
	for i, row := range req.Instances {
		if len(row) != features {
			g.stats.CountError()
			http.Error(w, fmt.Sprintf("bad request: instance %d has %d features, model wants %d", i, len(row), features), http.StatusBadRequest)
			return
		}
	}

	probs := matPool.Get().(*tensor.Matrix)
	err := g.bat.predict(m, req.Instances, probs)
	if err != nil {
		matPool.Put(probs)
		g.stats.CountError()
		http.Error(w, fmt.Sprintf("predict: %v", err), http.StatusInternalServerError)
		return
	}
	resp := predictResponse{
		Model:       modelVersion{Iter: m.Iter(), Epoch: m.Epoch()},
		Predictions: make([]prediction, len(req.Instances)),
	}
	for i := range req.Instances {
		row := probs.Row(i)
		arg := 0
		for j, v := range row {
			if v > row[arg] {
				arg = j
			}
		}
		p := prediction{Label: arg, Probs: make([]float32, len(row))}
		copy(p.Probs, row)
		resp.Predictions[i] = p
	}
	matPool.Put(probs)
	w.Header().Set("Content-Type", "application/json")
	g.versionHeaders(w, m)
	json.NewEncoder(w).Encode(&resp)
	g.stats.RecordLatency(time.Since(start))
}

func (g *Gateway) handleModel(w http.ResponseWriter, r *http.Request) {
	m := g.src.Latest()
	if m == nil {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "no snapshot captured yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	g.versionHeaders(w, m)
	json.NewEncoder(w).Encode(struct {
		Iter     int `json:"iter"`
		Epoch    int `json:"epoch"`
		Features int `json:"features"`
		Classes  int `json:"classes"`
		Values   int `json:"values"`
	}{m.Iter(), m.Epoch(), m.Features(), m.Classes(), m.NumValues()})
}

// versionHeaders stamps the served model's version (and the replica
// name, in a fleet) on a response, so the load balancer can enforce
// per-tenant version monotonicity across failover.
func (g *Gateway) versionHeaders(w http.ResponseWriter, m *snapshot.Model) {
	w.Header().Set(fleet.HeaderIter, strconv.Itoa(m.Iter()))
	w.Header().Set(fleet.HeaderEpoch, strconv.Itoa(m.Epoch()))
	if g.opts.ReplicaID != "" {
		w.Header().Set(fleet.HeaderReplica, g.opts.ReplicaID)
	}
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(g.opts.Metrics.Snapshot())
}

// handleHealthz reports liveness as JSON. A fleet replica (Stale set)
// fails the check — and so drops out of the balancer's rotation —
// while draining, while past its staleness bound, or before its first
// pull; a training gateway only fails it while draining.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	var lag int
	if g.opts.Stale != nil {
		var shed bool
		lag, shed = g.opts.Stale()
		if shed {
			status, code = "stale", http.StatusServiceUnavailable
		}
	}
	iter, epoch := -1, -1
	if m := g.src.Latest(); m != nil {
		iter, epoch = m.Iter(), m.Epoch()
	} else if g.opts.Stale != nil {
		status, code = "no snapshot", http.StatusServiceUnavailable
	}
	if g.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Status   string `json:"status"`
		Replica  string `json:"replica,omitempty"`
		LagIters int    `json:"lag_iters"`
		Iter     int    `json:"iter"`
		Epoch    int    `json:"epoch"`
	}{status, g.opts.ReplicaID, lag, iter, epoch})
}

// allowTenant charges one request against name's token bucket,
// creating it on first sight.
func (g *Gateway) allowTenant(name string) bool {
	if g.opts.TenantRPS < 0 {
		return true
	}
	now := time.Now()
	g.mu.Lock()
	t, ok := g.tenants[name]
	if !ok {
		t = &tenant{lim: rate.NewLimiter(rate.Limit(g.opts.TenantRPS), g.opts.TenantBurst)}
		g.tenants[name] = t
	}
	t.lastSeen = now
	g.mu.Unlock()
	return t.lim.AllowN(now, 1)
}

// janitor evicts limiters of tenants idle past TenantIdleTTL, so a
// long-lived gateway with churning tenant names cannot grow the map
// without bound.
func (g *Gateway) janitor() {
	defer close(g.janitorDone)
	tick := time.NewTicker(g.opts.TenantIdleTTL / 2)
	defer tick.Stop()
	for {
		select {
		case <-g.stopJanitor:
			return
		case now := <-tick.C:
			g.mu.Lock()
			for name, t := range g.tenants {
				if now.Sub(t.lastSeen) > g.opts.TenantIdleTTL {
					delete(g.tenants, name)
				}
			}
			g.mu.Unlock()
		}
	}
}
