package gpusim

import (
	"math"
	"testing"

	"repro/internal/nn"
)

func TestComputeTimeBasics(t *testing.T) {
	d := Device{PeakFLOPS: 1e12, Efficiency: 0.5, CopyBps: 1e9}
	if got := d.ComputeTime(5e11); got != 1.0 {
		t.Fatalf("ComputeTime = %v, want 1.0", got)
	}
	if got := d.ComputeTime(0); got != 0 {
		t.Fatalf("zero FLOPs should take 0s, got %v", got)
	}
	if got := d.CopyTime(2e9); got != 2.0 {
		t.Fatalf("CopyTime = %v, want 2.0", got)
	}
}

// Calibration must reproduce the paper's single-node throughput exactly.
func TestCalibrationMatchesPaperThroughput(t *testing.T) {
	for engine, models := range PaperSingleNodeIPS {
		for name, ips := range models {
			var m *nn.Model
			for _, z := range append(nn.Zoo(), nn.AlexNet()) {
				if z.Name == name {
					m = z
				}
			}
			if m == nil {
				t.Fatalf("model %q not in zoo", name)
			}
			d := CalibratedFor(engine, m)
			lt := NewLayerTimes(d, m, m.BatchSize)
			gotIPS := float64(m.BatchSize) / lt.IterTime()
			if math.Abs(gotIPS-ips)/ips > 0.01 {
				t.Errorf("%s/%s: calibrated throughput %.1f img/s, want %.1f",
					engine, name, gotIPS, ips)
			}
		}
	}
}

func TestCalibrationEfficiencyPlausible(t *testing.T) {
	// The calibrated efficiencies should be physically plausible
	// (between 2% and 100% of peak — inception-style small kernels
	// sustain far less than VGG's big GEMMs).
	for _, m := range nn.Zoo() {
		for _, engine := range []string{"caffe", "tensorflow"} {
			d := CalibratedFor(engine, m)
			if d.Efficiency <= 0.02 || d.Efficiency > 1.0 {
				t.Errorf("%s/%s: implausible efficiency %.3f", engine, m.Name, d.Efficiency)
			}
		}
	}
}

func TestCalibratedForFallsBack(t *testing.T) {
	m := nn.CIFARQuick()
	d := CalibratedFor("caffe", m)
	if d.Efficiency != TitanX().Efficiency {
		t.Fatalf("expected default efficiency for uncalibrated model, got %v", d.Efficiency)
	}
}

func TestLayerTimesSumsMatch(t *testing.T) {
	m := nn.VGG19()
	d := TitanX()
	lt := NewLayerTimes(d, m, 32)
	var fwd, bwd float64
	for i := range lt.Fwd {
		fwd += lt.Fwd[i]
		bwd += lt.Bwd[i]
	}
	if math.Abs(fwd-lt.FwdTotal) > 1e-12 || math.Abs(bwd-lt.BwdTotal) > 1e-12 {
		t.Fatal("totals don't match sums")
	}
	if lt.IterTime() != lt.FwdTotal+lt.BwdTotal {
		t.Fatal("IterTime mismatch")
	}
	// VGG19 conv layers dominate compute: the three FC layers together
	// must be well under half the backward time (this is the asymmetry
	// WFBP exploits: params concentrate in FC, compute in CONV).
	var fcBwd float64
	for i := range m.Layers {
		if m.Layers[i].Kind == nn.FC {
			fcBwd += lt.Bwd[i]
		}
	}
	if fcBwd > 0.2*lt.BwdTotal {
		t.Fatalf("FC backward fraction %.2f, want < 0.2", fcBwd/lt.BwdTotal)
	}
}

// The Section 2.2 AlexNet example: a 256-image batch in ~0.25s produces
// 61.5M gradients per 0.25s ≈ 240M/s.
func TestAlexNetGradientRate(t *testing.T) {
	m := nn.AlexNet()
	d := CalibratedFor("caffe", m)
	lt := NewLayerTimes(d, m, 256)
	gradPerSec := float64(m.TotalParams()) / lt.IterTime()
	if gradPerSec < 200e6 || gradPerSec > 280e6 {
		t.Fatalf("gradient rate = %.0fM/s, want ≈240M/s", gradPerSec/1e6)
	}
}

func TestDeviceString(t *testing.T) {
	if TitanX().String() == "" || TeslaK80().String() == "" {
		t.Fatal("empty device description")
	}
}

func TestCalibratePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TitanX().Calibrated(nn.VGG19(), 0)
}
