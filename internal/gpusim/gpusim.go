// Package gpusim models GPU compute for the performance plane of the
// Poseidon reproduction.
//
// Poseidon never changes the math a GPU executes — it reorders and
// overlaps compute with communication — so for every figure in the
// paper's evaluation what matters is the *duration* of each layer's
// forward/backward step and of DRAM↔GPU copies. We derive per-layer
// durations from exact FLOP counts (internal/nn) and a device rating,
// and we calibrate the device's sustained efficiency per model against
// the single-node throughputs the paper itself reports (Section 5.1),
// so the simulation is anchored to the authors' measurements.
package gpusim

import (
	"fmt"

	"repro/internal/nn"
)

// Device is one GPU plus its host link.
type Device struct {
	Name string
	// PeakFLOPS is the peak fp32 rate in FLOP/s.
	PeakFLOPS float64
	// Efficiency is the sustained fraction of peak achieved by the
	// model's kernel mix (cuDNN convolutions sustain 40–70% of peak
	// depending on shape).
	Efficiency float64
	// CopyBps is the effective DRAM↔GPU copy bandwidth (bytes/s);
	// PCIe 3.0 x16 sustains ~10–12 GB/s.
	CopyBps float64
}

// TitanX returns the NVIDIA GeForce TITAN X (Maxwell) used in the
// paper's cluster: 6.6 TFLOPS peak fp32.
func TitanX() Device {
	return Device{Name: "TITAN X", PeakFLOPS: 6.6e12, Efficiency: 0.55, CopyBps: 11e9}
}

// TeslaK80 returns one GK210 die of a Tesla K80, the GPU in the paper's
// AWS p2.8xlarge multi-GPU experiment (less GFLOPS than Titan X).
func TeslaK80() Device {
	return Device{Name: "Tesla K80", PeakFLOPS: 2.8e12, Efficiency: 0.55, CopyBps: 9e9}
}

// ComputeTime returns the duration of a kernel of the given FLOP count.
func (d Device) ComputeTime(flops int64) float64 {
	if flops <= 0 {
		return 0
	}
	return float64(flops) / (d.PeakFLOPS * d.Efficiency)
}

// CopyTime returns the duration of a DRAM↔GPU copy of the given size.
func (d Device) CopyTime(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / d.CopyBps
}

// Calibrated returns a copy of d whose Efficiency is set so that one
// full forward+backward iteration of model m at its Table 3 batch size
// takes exactly 1/ips·batch seconds — i.e. the device sustains the
// paper's reported single-node images/second for that model.
func (d Device) Calibrated(m *nn.Model, imagesPerSec float64) Device {
	if imagesPerSec <= 0 {
		panic("gpusim: non-positive throughput")
	}
	b := m.BatchSize
	iterFLOPs := m.FwdFLOPs(b) + m.BwdFLOPs(b)
	iterTime := float64(b) / imagesPerSec
	d.Efficiency = float64(iterFLOPs) / (iterTime * d.PeakFLOPS)
	if d.Efficiency <= 0 {
		panic("gpusim: calibration produced non-positive efficiency")
	}
	return d
}

// PaperSingleNodeIPS holds the single-node images/second the paper
// reports in Section 5.1, keyed by engine then model name. These anchor
// the calibrated simulations.
var PaperSingleNodeIPS = map[string]map[string]float64{
	"caffe": {
		"googlenet":  257,
		"vgg19":      35.5,
		"vgg19-22k":  34.6,
		"alexnet":    1024, // ≈0.25 s per 256-image batch (Section 2.2)
		"resnet-152": 48,   // not reported; FLOPs-derived estimate
	},
	"tensorflow": {
		"inception-v3": 43.2,
		"vgg19":        38.5,
		"vgg19-22k":    34.8,
		"resnet-152":   48, // not reported; FLOPs-derived estimate
	},
}

// CalibratedFor returns a Titan X calibrated to the paper's single-node
// throughput for (engine, model) when reported, or the default
// efficiency otherwise.
func CalibratedFor(engine string, m *nn.Model) Device {
	d := TitanX()
	if eng, ok := PaperSingleNodeIPS[engine]; ok {
		if ips, ok := eng[m.Name]; ok {
			return d.Calibrated(m, ips)
		}
	}
	return d
}

// LayerTimes precomputes per-layer forward and backward durations for a
// model at batch size b on device d.
type LayerTimes struct {
	Device Device
	Fwd    []float64 // per layer, seconds
	Bwd    []float64
	// FwdTotal and BwdTotal are the sums.
	FwdTotal, BwdTotal float64
}

// NewLayerTimes computes durations for every layer of m at batch b.
func NewLayerTimes(d Device, m *nn.Model, b int) *LayerTimes {
	lt := &LayerTimes{Device: d, Fwd: make([]float64, len(m.Layers)), Bwd: make([]float64, len(m.Layers))}
	for i := range m.Layers {
		lt.Fwd[i] = d.ComputeTime(m.Layers[i].FwdFLOPs(b))
		lt.Bwd[i] = d.ComputeTime(m.Layers[i].BwdFLOPs(b))
		lt.FwdTotal += lt.Fwd[i]
		lt.BwdTotal += lt.Bwd[i]
	}
	return lt
}

// IterTime returns the pure-compute duration of one iteration.
func (lt *LayerTimes) IterTime() float64 { return lt.FwdTotal + lt.BwdTotal }

// String summarizes the calibration.
func (d Device) String() string {
	return fmt.Sprintf("%s (%.1f TFLOPS × %.0f%% eff, %.1f GB/s copy)",
		d.Name, d.PeakFLOPS/1e12, d.Efficiency*100, d.CopyBps/1e9)
}
