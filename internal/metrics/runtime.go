// Runtime communication metrics — live atomic counters maintained by
// the functional plane while it trains, as opposed to the offline
// series/table renderers in figure.go-style code above. The comm
// runtime attributes wire traffic per parameter and route, the
// transport layer counts raw frames, the KV store counts folded
// rounds, and the trainer's compute loop records how long it stalls at
// each synchronization barrier. Snapshot() freezes everything into a
// JSON-serializable report (the schema behind poseidon-worker's
// -metrics-dump flag) so a real cluster run can prove the paper's
// claim — hybrid routing moves fewer bytes than pure PS — with
// measured numbers rather than the analytic model.
package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// WireStats counts frame-level traffic at the transport boundary.
// Loopback frames are excluded by the instrumenting wrapper — a
// self-send never touches the wire.
type WireStats struct {
	framesSent, framesRecv atomic.Int64
	bytesSent, bytesRecv   atomic.Int64
	bytesCopied            atomic.Int64
}

// CountSent records one outbound frame of the given on-wire size.
func (w *WireStats) CountSent(bytes int) {
	w.framesSent.Add(1)
	w.bytesSent.Add(int64(bytes))
}

// CountRecv records one inbound frame of the given on-wire size.
func (w *WireStats) CountRecv(bytes int) {
	w.framesRecv.Add(1)
	w.bytesRecv.Add(int64(bytes))
}

// CountCopied records bytes the transport itself copied into scratch
// memory on the egress path (loopback excluded) — the transport
// options' OnCopy hooks feed it. The vectored TCP path copies only the
// length prefix + header per frame (21 bytes), so bytes_copied_per_frame
// near that constant is the signature of zero-copy egress working; the
// shared-memory ring copies the whole record once by design.
func (w *WireStats) CountCopied(bytes int) { w.bytesCopied.Add(int64(bytes)) }

// WireSnapshot is the frozen form of WireStats.
type WireSnapshot struct {
	FramesSent int64 `json:"frames_sent"`
	FramesRecv int64 `json:"frames_recv"`
	BytesSent  int64 `json:"bytes_sent"`
	BytesRecv  int64 `json:"bytes_recv"`
	// BytesCopied is the cumulative transport scratch-copy volume on
	// the egress path; BytesCopiedPerFrame divides it by FramesSent
	// (0 when nothing was sent). Header-only (~21) on the vectored TCP
	// path; ~the mean frame size on the shm ring.
	BytesCopied         int64   `json:"bytes_copied"`
	BytesCopiedPerFrame float64 `json:"bytes_copied_per_frame"`
}

// Snapshot freezes the counters.
func (w *WireStats) Snapshot() WireSnapshot {
	s := WireSnapshot{
		FramesSent:  w.framesSent.Load(),
		FramesRecv:  w.framesRecv.Load(),
		BytesSent:   w.bytesSent.Load(),
		BytesRecv:   w.bytesRecv.Load(),
		BytesCopied: w.bytesCopied.Load(),
	}
	if s.FramesSent > 0 {
		s.BytesCopiedPerFrame = float64(s.BytesCopied) / float64(s.FramesSent)
	}
	return s
}

// KVStats counts parameter-server shard activity.
type KVStats struct {
	pushesBuffered, roundsFolded, valuesFolded atomic.Int64
}

// CountPush records one buffered worker contribution.
func (k *KVStats) CountPush() { k.pushesBuffered.Add(1) }

// CountRound records one completed fold of `values` float32 elements.
func (k *KVStats) CountRound(values int) {
	k.roundsFolded.Add(1)
	k.valuesFolded.Add(int64(values))
}

// KVSnapshot is the frozen form of KVStats.
type KVSnapshot struct {
	PushesBuffered int64 `json:"pushes_buffered"`
	RoundsFolded   int64 `json:"rounds_folded"`
	ValuesFolded   int64 `json:"values_folded"`
}

// Snapshot freezes the counters.
func (k *KVStats) Snapshot() KVSnapshot {
	return KVSnapshot{
		PushesBuffered: k.pushesBuffered.Load(),
		RoundsFolded:   k.roundsFolded.Load(),
		ValuesFolded:   k.valuesFolded.Load(),
	}
}

// stallBucketBounds are the upper bounds (exclusive, nanoseconds) of
// the stall histogram's buckets; the last bucket is unbounded.
var stallBucketBounds = []int64{
	int64(10 * time.Microsecond),
	int64(100 * time.Microsecond),
	int64(time.Millisecond),
	int64(10 * time.Millisecond),
	int64(100 * time.Millisecond),
	int64(time.Second),
}

// stallBucketLabels name the histogram buckets in the JSON snapshot.
var stallBucketLabels = []string{
	"<10us", "<100us", "<1ms", "<10ms", "<100ms", "<1s", ">=1s",
}

// stallHist is a fixed-bucket histogram of per-iteration sync-stall
// durations (time the compute loop spent blocked in WaitFor).
type stallHist struct {
	count, sumNanos, maxNanos atomic.Int64
	buckets                   [7]atomic.Int64
	// epochMax tracks the largest stall since the last SnapshotIter —
	// the straggler signal needs a per-window max, which the cumulative
	// maxNanos cannot provide.
	epochMax atomic.Int64
}

func (h *stallHist) record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNanos.Add(ns)
	atomicMax(&h.maxNanos, ns)
	atomicMax(&h.epochMax, ns)
	b := len(stallBucketBounds)
	for i, bound := range stallBucketBounds {
		if ns < bound {
			b = i
			break
		}
	}
	h.buckets[b].Add(1)
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		old := a.Load()
		if v <= old || a.CompareAndSwap(old, v) {
			return
		}
	}
}

// StallSnapshot is the frozen stall histogram.
type StallSnapshot struct {
	Count   int64            `json:"count"`
	TotalMS float64          `json:"total_ms"`
	MeanMS  float64          `json:"mean_ms"`
	MaxMS   float64          `json:"max_ms"`
	Buckets map[string]int64 `json:"buckets"`
}

func (h *stallHist) snapshot() StallSnapshot {
	s := StallSnapshot{
		Count:   h.count.Load(),
		TotalMS: float64(h.sumNanos.Load()) / 1e6,
		MaxMS:   float64(h.maxNanos.Load()) / 1e6,
		Buckets: make(map[string]int64, len(stallBucketLabels)),
	}
	if s.Count > 0 {
		s.MeanMS = s.TotalMS / float64(s.Count)
	}
	for i, label := range stallBucketLabels {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets[label] = n
		}
	}
	return s
}

// ParamStats holds the per-parameter traffic counters. The comm router
// registers one per synchronized tensor and attributes every non-loopback
// frame whose Layer field names it.
type ParamStats struct {
	index int
	name  string
	// route is mutable: a replan barrier can move a live parameter onto
	// another wire strategy mid-run (SetRoute), so reads and writes are
	// guarded. The snapshot reports the route at snapshot time.
	routeMu sync.Mutex
	route   string
	elems   int64
	// psEquivPerRound is the cost model's pure-PS per-node wire bytes
	// per iteration for this tensor (the caller computes it — Table 1's
	// colocated cost × 4 — so this package stays cost-model-agnostic).
	psEquivPerRound int64
	rounds          atomic.Int64
	bytesSent       atomic.Int64
	framesSent      atomic.Int64
	bytesRecv       atomic.Int64
	framesRecv      atomic.Int64
}

// CountSent records one outbound frame carrying this parameter.
func (p *ParamStats) CountSent(bytes int) {
	p.framesSent.Add(1)
	p.bytesSent.Add(int64(bytes))
}

// CountRecv records one inbound frame carrying this parameter.
func (p *ParamStats) CountRecv(bytes int) {
	p.framesRecv.Add(1)
	p.bytesRecv.Add(int64(bytes))
}

// CountRound records one synchronization launch (≙ one iteration).
func (p *ParamStats) CountRound() { p.rounds.Add(1) }

// SetRoute renames the parameter's wire strategy after a replan barrier
// moved it onto another syncer.
func (p *ParamStats) SetRoute(route string) {
	p.routeMu.Lock()
	p.route = route
	p.routeMu.Unlock()
}

// Route returns the parameter's current wire strategy name.
func (p *ParamStats) Route() string {
	p.routeMu.Lock()
	defer p.routeMu.Unlock()
	return p.route
}

// SentBytes returns the cumulative egress byte count attributed to this
// parameter — the reading the trainer's bandwidth estimator differences
// between replan windows.
func (p *ParamStats) SentBytes() int64 { return p.bytesSent.Load() }

// ParamSnapshot is the frozen per-parameter report.
type ParamSnapshot struct {
	Index  int    `json:"index"`
	Name   string `json:"name,omitempty"`
	Route  string `json:"route"`
	Elems  int64  `json:"elems"`
	Rounds int64  `json:"rounds"`

	BytesSent  int64 `json:"bytes_sent"`
	FramesSent int64 `json:"frames_sent"`
	BytesRecv  int64 `json:"bytes_recv"`
	FramesRecv int64 `json:"frames_recv"`

	// PSEquivBytes is the cost model's pure-PS per-node traffic for the
	// same number of rounds — the analytic reference the measured bytes
	// are compared against to compute SFB savings. Zero when the
	// registering caller supplied no baseline.
	PSEquivBytes int64 `json:"ps_equiv_bytes"`
}

func (p *ParamStats) snapshot() ParamSnapshot {
	return ParamSnapshot{
		Index:        p.index,
		Name:         p.name,
		Route:        p.Route(),
		Elems:        p.elems,
		Rounds:       p.rounds.Load(),
		BytesSent:    p.bytesSent.Load(),
		FramesSent:   p.framesSent.Load(),
		BytesRecv:    p.bytesRecv.Load(),
		FramesRecv:   p.framesRecv.Load(),
		PSEquivBytes: p.rounds.Load() * p.psEquivPerRound,
	}
}

// Comm is the registry of one node's live communication metrics: wire
// frames, KV rounds, per-parameter traffic, and sync-stall time.
// Every method — counters and RegisterParam alike — is safe for
// concurrent use, so several in-process routers may share one
// registry (each registers its own ParamStats blocks; Snapshot then
// reports cluster-wide totals, as examples/quickstart does).
type Comm struct {
	wire  WireStats
	kv    KVStats
	stall stallHist
	serve ServeStats

	mu     sync.Mutex
	params []*ParamStats

	// iterMu guards the SnapshotIter baseline (last window's cumulative
	// stall counters).
	iterMu   sync.Mutex
	iterBase StallSnapshot

	// replanMu guards the replan event log and the live bandwidth
	// estimate (written at replan barriers, read by Snapshot).
	replanMu sync.Mutex
	replans  []ReplanEvent
	bwEstBPS float64

	// viewMu guards the membership log: the current epoch and the
	// committed view transitions (written at membership barriers, read
	// by Snapshot).
	viewMu      sync.Mutex
	epoch       int
	viewChanges []ViewChangeEvent
}

// ReplanEvent records one route flip applied at a replan barrier: from
// iteration Iter on, parameter Param synchronizes over To instead of
// From.
type ReplanEvent struct {
	Iter  int    `json:"iter"`
	Param int    `json:"param"`
	Name  string `json:"name,omitempty"`
	From  string `json:"from"`
	To    string `json:"to"`
}

// NewComm creates an empty metrics registry.
func NewComm() *Comm { return &Comm{} }

// Wire returns the transport-level frame counters.
func (c *Comm) Wire() *WireStats { return &c.wire }

// KV returns the parameter-server shard counters.
func (c *Comm) KV() *KVStats { return &c.kv }

// Serve returns the serving-plane counters (the poseidon-serve
// gateway's request/batch/latency block).
func (c *Comm) Serve() *ServeStats { return &c.serve }

// RecordStall adds one compute-loop stall measurement.
func (c *Comm) RecordStall(d time.Duration) { c.stall.record(d) }

// SnapshotIter returns the stall histogram's delta since the previous
// SnapshotIter call (the full history on the first call): stall count,
// total/mean milliseconds, the largest single stall of the window, and
// per-bucket deltas. Called once per iteration (or per progress tick)
// it surfaces the live straggler signal — a worker whose windows grow a
// fat >=100ms bucket is waiting on a slow peer — without resetting the
// cumulative histogram that Snapshot reports.
func (c *Comm) SnapshotIter() StallSnapshot {
	c.iterMu.Lock()
	defer c.iterMu.Unlock()
	cur := c.stall.snapshot()
	d := StallSnapshot{
		Count:   cur.Count - c.iterBase.Count,
		TotalMS: cur.TotalMS - c.iterBase.TotalMS,
		MaxMS:   float64(c.stall.epochMax.Swap(0)) / 1e6,
		Buckets: make(map[string]int64, len(cur.Buckets)),
	}
	if d.Count > 0 {
		d.MeanMS = d.TotalMS / float64(d.Count)
	}
	for label, n := range cur.Buckets {
		if delta := n - c.iterBase.Buckets[label]; delta > 0 {
			d.Buckets[label] = delta
		}
	}
	c.iterBase = cur
	return d
}

// RecordReplan logs one route flip applied at a replan barrier.
func (c *Comm) RecordReplan(e ReplanEvent) {
	c.replanMu.Lock()
	c.replans = append(c.replans, e)
	c.replanMu.Unlock()
}

// ViewChangeEvent records one committed membership barrier: from
// RestartIter on, the cluster is Members (epoch Epoch), after removing
// the crashed (Dead) and departing (Left) ranks and admitting Joined.
type ViewChangeEvent struct {
	Epoch       int   `json:"epoch"`
	RestartIter int   `json:"restart_iter"`
	Members     []int `json:"members"`
	Dead        []int `json:"dead,omitempty"`
	Joined      []int `json:"joined,omitempty"`
	Left        []int `json:"left,omitempty"`
}

// RecordViewChange logs one committed membership transition and
// advances the epoch counter.
func (c *Comm) RecordViewChange(e ViewChangeEvent) {
	c.viewMu.Lock()
	c.epoch = e.Epoch
	c.viewChanges = append(c.viewChanges, e)
	c.viewMu.Unlock()
}

// MembershipEpoch returns the epoch of the last committed view change
// (0 before any membership transition).
func (c *Comm) MembershipEpoch() int {
	c.viewMu.Lock()
	defer c.viewMu.Unlock()
	return c.epoch
}

// SetBandwidthEstimate publishes the planner's current EWMA wire-rate
// estimate (bytes/second) so the snapshot can report what Algorithm 1
// was actually deciding against. Zero means no estimator ran on this
// node (only the replan leader folds observations).
func (c *Comm) SetBandwidthEstimate(bps float64) {
	c.replanMu.Lock()
	c.bwEstBPS = bps
	c.replanMu.Unlock()
}

// RegisterParam adds (and returns) the counter block for one
// synchronized parameter tensor. psEquivPerRound is the cost model's
// pure-PS per-node bytes per iteration (0 when unknown — savings then
// read as zero rather than wrong).
func (c *Comm) RegisterParam(index int, name, route string, elems int, psEquivPerRound int64) *ParamStats {
	p := &ParamStats{index: index, name: name, route: route, elems: int64(elems), psEquivPerRound: psEquivPerRound}
	c.mu.Lock()
	c.params = append(c.params, p)
	c.mu.Unlock()
	return p
}

// TotalsSnapshot aggregates the per-parameter counters.
type TotalsSnapshot struct {
	BytesSent int64 `json:"bytes_sent"`
	BytesRecv int64 `json:"bytes_recv"`
	// SFBParams counts parameters routed over sufficient-factor
	// broadcasting.
	SFBParams int `json:"sfb_params"`
	// SFBSavingsBytes sums, over SFB-routed parameters with a known
	// PS baseline (ps_equiv_bytes > 0), the baseline traffic minus the
	// measured SFB traffic (sent+received) — the byte savings HybComm's
	// Algorithm 1 predicted. Negative when pinned SFB routes lose to
	// the PS (an override ablation), so losing routes are visible
	// rather than clamped away.
	SFBSavingsBytes int64 `json:"sfb_savings_bytes"`
}

// CommSnapshot is the full frozen report, JSON-encoded by the worker's
// -metrics-dump flag.
type CommSnapshot struct {
	Wire   WireSnapshot    `json:"wire"`
	KV     KVSnapshot      `json:"kvstore"`
	Stall  StallSnapshot   `json:"stall"`
	Params []ParamSnapshot `json:"params"`
	Totals TotalsSnapshot  `json:"totals"`
	// ReplanEvents lists every route flip applied at a replan barrier,
	// in application order; empty when the run never replanned.
	ReplanEvents []ReplanEvent `json:"replan_events"`
	// BWEstimateBPS is the planner's final EWMA wire-rate estimate
	// (bytes/second); 0 on nodes that never folded an observation.
	BWEstimateBPS float64 `json:"bw_estimate_bps"`
	// MembershipEpoch is the cluster view epoch this node last
	// committed (0 for a run that never changed membership);
	// ViewChanges lists every committed membership barrier in order.
	MembershipEpoch int               `json:"membership_epoch"`
	ViewChanges     []ViewChangeEvent `json:"view_changes,omitempty"`
	// Serve is the serving-plane block, present only on nodes that
	// handled at least one /v1/predict request.
	Serve *ServeSnapshot `json:"serve,omitempty"`
}

// Snapshot freezes every counter into a serializable report.
func (c *Comm) Snapshot() CommSnapshot {
	c.mu.Lock()
	params := make([]*ParamStats, len(c.params))
	copy(params, c.params)
	c.mu.Unlock()

	snap := CommSnapshot{
		Wire:  c.wire.Snapshot(),
		KV:    c.kv.Snapshot(),
		Stall: c.stall.snapshot(),
	}
	c.replanMu.Lock()
	snap.ReplanEvents = append([]ReplanEvent(nil), c.replans...)
	snap.BWEstimateBPS = c.bwEstBPS
	c.replanMu.Unlock()
	c.viewMu.Lock()
	snap.MembershipEpoch = c.epoch
	snap.ViewChanges = append([]ViewChangeEvent(nil), c.viewChanges...)
	c.viewMu.Unlock()
	if c.serve.active() {
		serve := c.serve.Snapshot()
		snap.Serve = &serve
	}
	for _, p := range params {
		ps := p.snapshot()
		snap.Params = append(snap.Params, ps)
		snap.Totals.BytesSent += ps.BytesSent
		snap.Totals.BytesRecv += ps.BytesRecv
		if ps.Route == "SFB" {
			snap.Totals.SFBParams++
			if ps.PSEquivBytes > 0 {
				snap.Totals.SFBSavingsBytes += ps.PSEquivBytes - (ps.BytesSent + ps.BytesRecv)
			}
		}
	}
	return snap
}
