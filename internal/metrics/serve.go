package metrics

import (
	"sync/atomic"
	"time"
)

// Serving-plane metrics: the gateway's request, micro-batch, and
// latency counters. Like the stall histogram, everything is lock-free
// atomics on the record path; quantiles are derived at snapshot time by
// linear interpolation within fixed log-spaced buckets, with the
// recorded maximum closing the unbounded tail.

// latencyBucketNS are the upper bounds of the request-latency buckets
// (an array, so histogram sizes derive from it at compile time).
var latencyBucketNS = [12]int64{
	int64(250 * time.Microsecond),
	int64(500 * time.Microsecond),
	int64(1 * time.Millisecond),
	int64(2500 * time.Microsecond),
	int64(5 * time.Millisecond),
	int64(10 * time.Millisecond),
	int64(25 * time.Millisecond),
	int64(50 * time.Millisecond),
	int64(100 * time.Millisecond),
	int64(250 * time.Millisecond),
	int64(500 * time.Millisecond),
	int64(1 * time.Second),
}

var latencyBucketLabels = [len(latencyBucketNS) + 1]string{
	"<250us", "<500us", "<1ms", "<2.5ms", "<5ms", "<10ms",
	"<25ms", "<50ms", "<100ms", "<250ms", "<500ms", "<1s", ">=1s",
}

// batchBucketMax are the upper bounds (inclusive) of the micro-batch
// size histogram.
var batchBucketMax = [7]int64{1, 2, 4, 8, 16, 32, 64}

var batchBucketLabels = [len(batchBucketMax) + 1]string{
	"1", "2", "<=4", "<=8", "<=16", "<=32", "<=64", ">64",
}

// latencyHist is a fixed-bucket latency histogram with a tracked
// maximum, recordable concurrently without locks.
type latencyHist struct {
	count    atomic.Int64
	sumNanos atomic.Int64
	maxNanos atomic.Int64
	buckets  [len(latencyBucketNS) + 1]atomic.Int64
}

func (h *latencyHist) record(d time.Duration) {
	ns := d.Nanoseconds()
	h.count.Add(1)
	h.sumNanos.Add(ns)
	atomicMax(&h.maxNanos, ns)
	i := 0
	for i < len(latencyBucketNS) && ns >= latencyBucketNS[i] {
		i++
	}
	h.buckets[i].Add(1)
}

// quantile estimates the q-th latency quantile in milliseconds from the
// bucket counts: linear interpolation between the bucket's bounds, with
// the recorded maximum standing in for the open tail's upper edge.
func (h *latencyHist) quantile(counts []int64, total int64, q float64) float64 {
	return latencyQuantile(counts, total, float64(h.maxNanos.Load()), q)
}

// latencyQuantile is the interpolation core, shared with the fleet
// aggregation path (which reconstructs bucket counts from serialized
// snapshots rather than a live histogram).
func latencyQuantile(counts []int64, total int64, maxNS, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = float64(latencyBucketNS[i-1])
			}
			hi := maxNS
			if i < len(latencyBucketNS) {
				hi = float64(latencyBucketNS[i])
			}
			if hi > maxNS {
				hi = maxNS
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(cum)) / float64(n)
			return (lo + frac*(hi-lo)) / 1e6
		}
		cum += n
	}
	return maxNS / 1e6
}

// ServeStats is the gateway's live serving metrics block. Replica-mode
// gateways additionally record the snapshot-distribution side: pull
// counters and the staleness gauge a fleet load balancer watches.
type ServeStats struct {
	requests    atomic.Int64
	predictions atomic.Int64
	batches     atomic.Int64
	rateLimited atomic.Int64
	shed        atomic.Int64
	errors      atomic.Int64

	batchSum     atomic.Int64
	batchMax     atomic.Int64
	batchBuckets [len(batchBucketMax) + 1]atomic.Int64

	latency latencyHist

	// Snapshot distribution: the source side counts fan-out serves and
	// cache (re-)encodes; the replica side counts pulls and tracks how
	// many iterations it trails the source.
	snapServes  atomic.Int64
	snapBytes   atomic.Int64
	snapEncodes atomic.Int64
	pulls       atomic.Int64
	pullErrors  atomic.Int64
	pullBytes   atomic.Int64
	staleShed   atomic.Int64
	snapLag     atomic.Int64

	replica atomic.Pointer[string]
}

// SetReplica labels this node's serving block with a fleet-unique
// replica identity (what poseidon-lb keys its aggregation on).
func (s *ServeStats) SetReplica(id string) { s.replica.Store(&id) }

// SetSnapshotLag records how many iterations this replica's served
// snapshot trails the newest version its source has announced.
func (s *ServeStats) SetSnapshotLag(iters int64) { s.snapLag.Store(iters) }

// CountSnapshotServe counts one snapshot body fanned out to a replica.
func (s *ServeStats) CountSnapshotServe(bytes int) {
	s.snapServes.Add(1)
	s.snapBytes.Add(int64(bytes))
}

// CountSnapshotEncode counts one PSN2 encode of a fresh capture — the
// fan-out path encodes once per capture, so this staying far below
// CountSnapshotServe is the cache working.
func (s *ServeStats) CountSnapshotEncode() { s.snapEncodes.Add(1) }

// CountPull counts one successful snapshot pull of the given body size
// (0 for a not-modified probe).
func (s *ServeStats) CountPull(bytes int) {
	s.pulls.Add(1)
	s.pullBytes.Add(int64(bytes))
}

// CountPullError counts one failed snapshot pull.
func (s *ServeStats) CountPullError() { s.pullErrors.Add(1) }

// CountStaleShed counts one request shed because the replica trails its
// source past the staleness bound (also counted as a shed).
func (s *ServeStats) CountStaleShed() {
	s.shed.Add(1)
	s.staleShed.Add(1)
}

// active reports whether this block carries any serving-plane signal —
// what decides if the serve section appears in the metrics dump. A
// replica that has pulled snapshots but served nothing yet still counts.
func (s *ServeStats) active() bool {
	return s.requests.Load() > 0 || s.pulls.Load() > 0 ||
		s.pullErrors.Load() > 0 || s.snapServes.Load() > 0 || s.replica.Load() != nil
}

// CountRequest counts one /v1/predict arrival (any outcome).
func (s *ServeStats) CountRequest() { s.requests.Add(1) }

// CountRateLimited counts one 429 rejected by a tenant limiter.
func (s *ServeStats) CountRateLimited() { s.rateLimited.Add(1) }

// CountShed counts one 503 shed by admission control or drain.
func (s *ServeStats) CountShed() { s.shed.Add(1) }

// CountError counts one request that failed for any other reason.
func (s *ServeStats) CountError() { s.errors.Add(1) }

// RecordBatch logs one executed micro-batch of the given row count.
func (s *ServeStats) RecordBatch(rows int) {
	s.batches.Add(1)
	s.predictions.Add(int64(rows))
	s.batchSum.Add(int64(rows))
	atomicMax(&s.batchMax, int64(rows))
	i := 0
	for i < len(batchBucketMax) && int64(rows) > batchBucketMax[i] {
		i++
	}
	s.batchBuckets[i].Add(1)
}

// RecordLatency logs one served request's end-to-end latency.
func (s *ServeStats) RecordLatency(d time.Duration) { s.latency.record(d) }

// LatencySnapshot is the frozen latency histogram with derived
// percentiles, all in milliseconds.
type LatencySnapshot struct {
	Count   int64            `json:"count"`
	MeanMS  float64          `json:"mean_ms"`
	MaxMS   float64          `json:"max_ms"`
	P50MS   float64          `json:"p50_ms"`
	P95MS   float64          `json:"p95_ms"`
	P99MS   float64          `json:"p99_ms"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// ServeSnapshot is the frozen serving block of a metrics dump.
type ServeSnapshot struct {
	// Replica is the fleet identity of the node this block came from
	// (empty on a lone gateway and on fleet-wide aggregates).
	Replica     string `json:"replica,omitempty"`
	Requests    int64  `json:"requests"`
	Predictions int64  `json:"predictions"`
	Batches     int64  `json:"batches"`
	RateLimited int64  `json:"rate_limited"`
	Shed        int64  `json:"shed"`
	// StaleShed counts the sheds caused by the staleness bound: the
	// replica's snapshot trailed its source past max-lag.
	StaleShed int64 `json:"stale_shed"`
	Errors    int64 `json:"errors"`
	// SnapshotLagIters is how many iterations the served snapshot
	// trails the newest version the source has announced (a gauge; the
	// fleet aggregate reports the worst replica).
	SnapshotLagIters int64 `json:"snapshot_lag_iters"`
	// Snapshot distribution counters: serves/bytes/encodes on the
	// source side, pulls/bytes/errors on the replica side.
	SnapshotServes     int64 `json:"snapshot_serves,omitempty"`
	SnapshotBytes      int64 `json:"snapshot_bytes,omitempty"`
	SnapshotEncodes    int64 `json:"snapshot_encodes,omitempty"`
	SnapshotPulls      int64 `json:"snapshot_pulls,omitempty"`
	SnapshotPullBytes  int64 `json:"snapshot_pull_bytes,omitempty"`
	SnapshotPullErrors int64 `json:"snapshot_pull_errors,omitempty"`
	// MeanBatch/MaxBatch/BatchBuckets describe how well requests
	// coalesced: a mean near 1 under load means the window is too short.
	MeanBatch    float64          `json:"mean_batch"`
	MaxBatch     int64            `json:"max_batch"`
	BatchBuckets map[string]int64 `json:"batch_buckets,omitempty"`
	Latency      LatencySnapshot  `json:"latency_ms"`
}

// Snapshot freezes the serving counters.
func (s *ServeStats) Snapshot() ServeSnapshot {
	snap := ServeSnapshot{
		Requests:           s.requests.Load(),
		Predictions:        s.predictions.Load(),
		Batches:            s.batches.Load(),
		RateLimited:        s.rateLimited.Load(),
		Shed:               s.shed.Load(),
		StaleShed:          s.staleShed.Load(),
		Errors:             s.errors.Load(),
		SnapshotLagIters:   s.snapLag.Load(),
		SnapshotServes:     s.snapServes.Load(),
		SnapshotBytes:      s.snapBytes.Load(),
		SnapshotEncodes:    s.snapEncodes.Load(),
		SnapshotPulls:      s.pulls.Load(),
		SnapshotPullBytes:  s.pullBytes.Load(),
		SnapshotPullErrors: s.pullErrors.Load(),
		MaxBatch:           s.batchMax.Load(),
	}
	if id := s.replica.Load(); id != nil {
		snap.Replica = *id
	}
	if snap.Batches > 0 {
		snap.MeanBatch = float64(s.batchSum.Load()) / float64(snap.Batches)
		snap.BatchBuckets = make(map[string]int64, len(batchBucketLabels))
		for i := range s.batchBuckets {
			if n := s.batchBuckets[i].Load(); n > 0 {
				snap.BatchBuckets[batchBucketLabels[i]] = n
			}
		}
	}

	lat := &snap.Latency
	counts := make([]int64, len(s.latency.buckets))
	var total int64
	for i := range s.latency.buckets {
		counts[i] = s.latency.buckets[i].Load()
		total += counts[i]
	}
	lat.Count = total
	if total > 0 {
		lat.MeanMS = float64(s.latency.sumNanos.Load()) / float64(total) / 1e6
		lat.MaxMS = float64(s.latency.maxNanos.Load()) / 1e6
		lat.P50MS = s.latency.quantile(counts, total, 0.50)
		lat.P95MS = s.latency.quantile(counts, total, 0.95)
		lat.P99MS = s.latency.quantile(counts, total, 0.99)
		lat.Buckets = make(map[string]int64, len(latencyBucketLabels))
		for i, n := range counts {
			if n > 0 {
				lat.Buckets[latencyBucketLabels[i]] = n
			}
		}
	}
	return snap
}

// MergeLatency folds per-replica latency snapshots into one fleet-wide
// histogram: bucket counts sum (the labels are the shared fixed
// bounds), the recorded maxima take their max, and the percentiles are
// re-derived from the merged counts — so the fleet p99 is computed over
// the union of requests, not averaged across replicas.
func MergeLatency(snaps ...LatencySnapshot) LatencySnapshot {
	var counts [len(latencyBucketLabels)]int64
	var out LatencySnapshot
	var sumNS float64
	for _, s := range snaps {
		out.Count += s.Count
		sumNS += s.MeanMS * 1e6 * float64(s.Count)
		if s.MaxMS > out.MaxMS {
			out.MaxMS = s.MaxMS
		}
		for i, label := range latencyBucketLabels {
			counts[i] += s.Buckets[label]
		}
	}
	if out.Count == 0 {
		return out
	}
	out.MeanMS = sumNS / float64(out.Count) / 1e6
	maxNS := out.MaxMS * 1e6
	out.P50MS = latencyQuantile(counts[:], out.Count, maxNS, 0.50)
	out.P95MS = latencyQuantile(counts[:], out.Count, maxNS, 0.95)
	out.P99MS = latencyQuantile(counts[:], out.Count, maxNS, 0.99)
	out.Buckets = make(map[string]int64, len(latencyBucketLabels))
	for i, n := range counts {
		if n > 0 {
			out.Buckets[latencyBucketLabels[i]] = n
		}
	}
	return out
}

// MergeServe folds per-replica serving blocks into the fleet-wide
// aggregate poseidon-lb exports: counters sum, the batch histogram
// merges by label, the staleness gauge reports the worst replica, and
// the latency block is MergeLatency over the members.
func MergeServe(snaps ...ServeSnapshot) ServeSnapshot {
	var out ServeSnapshot
	var batchBuckets [len(batchBucketLabels)]int64
	var batchSum float64
	lats := make([]LatencySnapshot, 0, len(snaps))
	for _, s := range snaps {
		out.Requests += s.Requests
		out.Predictions += s.Predictions
		out.Batches += s.Batches
		out.RateLimited += s.RateLimited
		out.Shed += s.Shed
		out.StaleShed += s.StaleShed
		out.Errors += s.Errors
		out.SnapshotServes += s.SnapshotServes
		out.SnapshotBytes += s.SnapshotBytes
		out.SnapshotEncodes += s.SnapshotEncodes
		out.SnapshotPulls += s.SnapshotPulls
		out.SnapshotPullBytes += s.SnapshotPullBytes
		out.SnapshotPullErrors += s.SnapshotPullErrors
		if s.SnapshotLagIters > out.SnapshotLagIters {
			out.SnapshotLagIters = s.SnapshotLagIters
		}
		if s.MaxBatch > out.MaxBatch {
			out.MaxBatch = s.MaxBatch
		}
		batchSum += s.MeanBatch * float64(s.Batches)
		for i, label := range batchBucketLabels {
			batchBuckets[i] += s.BatchBuckets[label]
		}
		lats = append(lats, s.Latency)
	}
	if out.Batches > 0 {
		out.MeanBatch = batchSum / float64(out.Batches)
		out.BatchBuckets = make(map[string]int64, len(batchBucketLabels))
		for i, n := range batchBuckets {
			if n > 0 {
				out.BatchBuckets[batchBucketLabels[i]] = n
			}
		}
	}
	out.Latency = MergeLatency(lats...)
	return out
}
