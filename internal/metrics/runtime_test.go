package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWireAndKVCounters(t *testing.T) {
	c := NewComm()
	c.Wire().CountSent(100)
	c.Wire().CountSent(50)
	c.Wire().CountRecv(30)
	c.KV().CountPush()
	c.KV().CountPush()
	c.KV().CountRound(64)

	snap := c.Snapshot()
	if snap.Wire.FramesSent != 2 || snap.Wire.BytesSent != 150 {
		t.Fatalf("wire sent %d/%d", snap.Wire.FramesSent, snap.Wire.BytesSent)
	}
	if snap.Wire.FramesRecv != 1 || snap.Wire.BytesRecv != 30 {
		t.Fatalf("wire recv %d/%d", snap.Wire.FramesRecv, snap.Wire.BytesRecv)
	}
	if snap.KV.PushesBuffered != 2 || snap.KV.RoundsFolded != 1 || snap.KV.ValuesFolded != 64 {
		t.Fatalf("kv snapshot %+v", snap.KV)
	}
}

func TestStallHistogram(t *testing.T) {
	c := NewComm()
	c.RecordStall(5 * time.Microsecond)  // <10us
	c.RecordStall(2 * time.Millisecond)  // <10ms
	c.RecordStall(50 * time.Millisecond) // <100ms
	snap := c.Snapshot().Stall
	if snap.Count != 3 {
		t.Fatalf("count %d", snap.Count)
	}
	if snap.MaxMS < 49 || snap.MaxMS > 51 {
		t.Fatalf("max %.2fms", snap.MaxMS)
	}
	want := map[string]int64{"<10us": 1, "<10ms": 1, "<100ms": 1}
	for k, v := range want {
		if snap.Buckets[k] != v {
			t.Fatalf("bucket %q = %d, want %d (all: %v)", k, snap.Buckets[k], v, snap.Buckets)
		}
	}
	if snap.MeanMS <= 0 || snap.TotalMS < snap.MaxMS {
		t.Fatalf("mean %.3f total %.3f", snap.MeanMS, snap.TotalMS)
	}
}

// The savings accounting behind the paper's headline claim: an SFB
// param that moved fewer bytes than Table 1's pure-PS equivalent shows
// positive savings; PS params contribute none.
func TestSnapshotComputesSFBSavings(t *testing.T) {
	c := NewComm()
	sfb := c.RegisterParam(0, "fc.W", "SFB", 2048, 16384) // PS baseline: 16384 B/round
	ps := c.RegisterParam(1, "fc.b", "PS", 32, 256)
	for i := 0; i < 3; i++ {
		sfb.CountRound()
		sfb.CountSent(2000)
		sfb.CountRecv(2000)
		ps.CountRound()
		ps.CountSent(160)
	}
	// A pinned SFB route that loses to the PS must show up as negative
	// savings, not be clamped away; an SFB param with no baseline
	// (ps_equiv 0) must not poison the sum.
	losing := c.RegisterParam(2, "thin.W", "SFB", 320, 1000)
	losing.CountRound()
	losing.CountSent(900)
	losing.CountRecv(900)
	nobase := c.RegisterParam(3, "x.W", "SFB", 64, 0)
	nobase.CountRound()
	nobase.CountSent(100)

	snap := c.Snapshot()
	if len(snap.Params) != 4 {
		t.Fatalf("%d params", len(snap.Params))
	}
	if snap.Params[0].PSEquivBytes != 3*8*2048 {
		t.Fatalf("ps_equiv %d", snap.Params[0].PSEquivBytes)
	}
	if snap.Totals.SFBParams != 3 {
		t.Fatalf("sfb params %d", snap.Totals.SFBParams)
	}
	wantSavings := int64(3*8*2048-3*4000) + (1000 - 1800)
	if snap.Totals.SFBSavingsBytes != wantSavings {
		t.Fatalf("savings %d, want %d", snap.Totals.SFBSavingsBytes, wantSavings)
	}
	if snap.Totals.BytesSent != 3*2000+3*160+900+100 {
		t.Fatalf("total sent %d", snap.Totals.BytesSent)
	}
}

// Counters must hold up under concurrent writers (they run on the
// compute goroutine, the receive loop, and every pool worker at once).
func TestCountersConcurrent(t *testing.T) {
	c := NewComm()
	p := c.RegisterParam(0, "w", "PS", 10, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.CountSent(10)
				p.CountRecv(5)
				c.Wire().CountSent(10)
				c.RecordStall(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	snap := c.Snapshot()
	if snap.Params[0].BytesSent != 80000 || snap.Params[0].BytesRecv != 40000 {
		t.Fatalf("param bytes %d/%d", snap.Params[0].BytesSent, snap.Params[0].BytesRecv)
	}
	if snap.Wire.FramesSent != 8000 || snap.Stall.Count != 8000 {
		t.Fatalf("wire %d stall %d", snap.Wire.FramesSent, snap.Stall.Count)
	}
}

// The snapshot is the -metrics-dump wire format; its JSON field names
// are load-bearing for the e2e suite and external tooling.
func TestSnapshotJSONSchema(t *testing.T) {
	c := NewComm()
	c.RegisterParam(0, "fc.W", "SFB", 4, 32).CountRound()
	b, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"wire"`, `"kvstore"`, `"stall"`, `"params"`, `"totals"`,
		`"bytes_sent"`, `"frames_sent"`, `"bytes_recv"`, `"frames_recv"`,
		`"route":"SFB"`, `"ps_equiv_bytes"`, `"sfb_savings_bytes"`, `"rounds_folded"`,
	} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("snapshot JSON missing %s:\n%s", key, b)
		}
	}
}

// SnapshotIter must report window deltas — count, totals, buckets, and
// a per-window max — without disturbing the cumulative histogram.
func TestSnapshotIterDeltas(t *testing.T) {
	c := NewComm()
	c.RecordStall(5 * time.Millisecond)
	c.RecordStall(200 * time.Millisecond)

	w1 := c.SnapshotIter()
	if w1.Count != 2 {
		t.Fatalf("window 1 count %d, want 2", w1.Count)
	}
	if w1.MaxMS < 199 || w1.MaxMS > 201 {
		t.Fatalf("window 1 max %.2fms, want ~200", w1.MaxMS)
	}
	if w1.Buckets["<10ms"] != 1 || w1.Buckets["<1s"] != 1 {
		t.Fatalf("window 1 buckets %v", w1.Buckets)
	}

	// Second window: one small stall only; the max must reset.
	c.RecordStall(20 * time.Microsecond)
	w2 := c.SnapshotIter()
	if w2.Count != 1 {
		t.Fatalf("window 2 count %d, want 1", w2.Count)
	}
	if w2.MaxMS > 1 {
		t.Fatalf("window 2 max %.3fms leaked from window 1", w2.MaxMS)
	}
	if len(w2.Buckets) != 1 || w2.Buckets["<100us"] != 1 {
		t.Fatalf("window 2 buckets %v", w2.Buckets)
	}

	// Empty window: all-zero delta.
	w3 := c.SnapshotIter()
	if w3.Count != 0 || w3.TotalMS != 0 || w3.MaxMS != 0 || len(w3.Buckets) != 0 {
		t.Fatalf("empty window not zero: %+v", w3)
	}

	// The cumulative histogram is untouched by the windows.
	if snap := c.Snapshot(); snap.Stall.Count != 3 || snap.Stall.MaxMS < 199 {
		t.Fatalf("cumulative stall disturbed: %+v", snap.Stall)
	}
}
