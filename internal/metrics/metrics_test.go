package metrics

import (
	"strings"
	"testing"
)

func TestSeriesAddAt(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 20)
	if y, ok := s.At(2); !ok || y != 20 {
		t.Fatalf("At(2) = %v, %v", y, ok)
	}
	if _, ok := s.At(3); ok {
		t.Fatal("At(3) should miss")
	}
}

func TestFigureRender(t *testing.T) {
	f := NewFigure("Fig X", "nodes", "speedup")
	f.SeriesNamed("Poseidon").Add(1, 1)
	f.SeriesNamed("Poseidon").Add(2, 2)
	f.SeriesNamed("PS").Add(2, 1.5)
	out := f.Render()
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "Poseidon") {
		t.Fatalf("render missing pieces:\n%s", out)
	}
	// x=1 has no PS point → dash.
	if !strings.Contains(out, "-") {
		t.Fatal("missing placeholder for absent point")
	}
	if f.SeriesNamed("Poseidon") != f.Series[0] {
		t.Fatal("SeriesNamed must return the existing series")
	}
}

func TestFigureCSV(t *testing.T) {
	f := NewFigure("f", "x", "y")
	f.SeriesNamed("a").Add(1, 0.5)
	csv := f.CSV()
	if !strings.HasPrefix(csv, "x,a\n") {
		t.Fatalf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "1,0.5000") {
		t.Fatalf("csv row wrong: %q", csv)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("T", "model", "params")
	tb.AddRow("vgg19", 143.67)
	tb.AddRow("googlenet", 5)
	out := tb.Render()
	if !strings.Contains(out, "vgg19") || !strings.Contains(out, "143.67") {
		t.Fatalf("table render wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines", len(lines))
	}
}

func TestBars(t *testing.T) {
	out := Bars("traffic", []string{"n0", "n1"}, []float64{1, 4}, "Gb")
	if !strings.Contains(out, "n0") || !strings.Contains(out, "####") {
		t.Fatalf("bars wrong:\n%s", out)
	}
	// Zero max must not panic.
	if Bars("z", []string{"a"}, []float64{0}, "Gb") == "" {
		t.Fatal("empty bars output")
	}
}
