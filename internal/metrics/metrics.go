// Package metrics provides series containers and fixed-width text
// rendering for the reproduction's tables and figures, so every
// experiment prints the same rows/columns the paper reports.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Series is one labeled line of a figure: y-values indexed by x.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// At returns the y value for x, or NaN-like zero and false.
func (s *Series) At(x float64) (float64, bool) {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Figure is a set of series sharing an x-axis.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// SeriesNamed returns (creating if needed) the series with the label.
func (f *Figure) SeriesNamed(label string) *Series {
	for _, s := range f.Series {
		if s.Label == label {
			return s
		}
	}
	s := &Series{Label: label}
	f.Series = append(f.Series, s)
	return s
}

// Render prints the figure as an aligned text table: one row per x, one
// column per series.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	// Collect the x-axis union.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%16s", s.Label)
	}
	fmt.Fprintln(&b)
	for _, x := range xs {
		fmt.Fprintf(&b, "%-12g", x)
		for _, s := range f.Series {
			if y, ok := s.At(x); ok {
				fmt.Fprintf(&b, "%16.2f", y)
			} else {
				fmt.Fprintf(&b, "%16s", "-")
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// CSV renders the figure as comma-separated values.
func (f *Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, ",%s", s.Label)
	}
	fmt.Fprintln(&b)
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			if y, ok := s.At(x); ok {
				fmt.Fprintf(&b, ",%.4f", y)
			} else {
				fmt.Fprintf(&b, ",")
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Table is a titled fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render prints the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	for i, h := range t.Headers {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	fmt.Fprintln(&b)
	for i := range t.Headers {
		fmt.Fprintf(&b, "%s  ", strings.Repeat("-", widths[i]))
	}
	fmt.Fprintln(&b)
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Bars renders a labeled bar chart (used for Fig. 10's per-node traffic).
func Bars(title string, labels []string, values []float64, unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(v / max * 50)
		}
		fmt.Fprintf(&b, "%-10s %8.2f %s |%s\n", labels[i], v, unit, strings.Repeat("#", n))
	}
	return b.String()
}
