package metrics

import (
	"encoding/json"
	"testing"
	"time"
)

// TestServeStatsSnapshot exercises every counter and the batch
// histogram bucketing.
func TestServeStatsSnapshot(t *testing.T) {
	var s ServeStats
	for i := 0; i < 10; i++ {
		s.CountRequest()
	}
	s.CountRateLimited()
	s.CountShed()
	s.CountError()
	s.RecordBatch(1)
	s.RecordBatch(4)
	s.RecordBatch(16)
	s.RecordBatch(100)

	snap := s.Snapshot()
	if snap.Requests != 10 || snap.RateLimited != 1 || snap.Shed != 1 || snap.Errors != 1 {
		t.Fatalf("counters = %+v", snap)
	}
	if snap.Batches != 4 || snap.Predictions != 121 || snap.MaxBatch != 100 {
		t.Fatalf("batch totals = %+v", snap)
	}
	if snap.MeanBatch != 121.0/4 {
		t.Fatalf("mean batch = %g, want %g", snap.MeanBatch, 121.0/4)
	}
	want := map[string]int64{"1": 1, "<=4": 1, "<=16": 1, ">64": 1}
	for label, n := range want {
		if snap.BatchBuckets[label] != n {
			t.Fatalf("batch bucket %q = %d, want %d (all: %v)", label, snap.BatchBuckets[label], n, snap.BatchBuckets)
		}
	}
}

// TestLatencyPercentiles checks the quantile interpolation against a
// synthetic distribution: 90 fast requests, 9 medium, 1 huge outlier.
func TestLatencyPercentiles(t *testing.T) {
	var s ServeStats
	for i := 0; i < 90; i++ {
		s.RecordLatency(600 * time.Microsecond) // <1ms bucket
	}
	for i := 0; i < 9; i++ {
		s.RecordLatency(30 * time.Millisecond) // <50ms bucket
	}
	s.RecordLatency(800 * time.Millisecond) // <1s bucket

	lat := s.Snapshot().Latency
	if lat.Count != 100 {
		t.Fatalf("count = %d, want 100", lat.Count)
	}
	if lat.P50MS < 0.5 || lat.P50MS > 1.0 {
		t.Fatalf("p50 = %gms, want within the <1ms bucket", lat.P50MS)
	}
	if lat.P95MS < 25 || lat.P95MS > 50 {
		t.Fatalf("p95 = %gms, want within the 25-50ms bucket", lat.P95MS)
	}
	if lat.P99MS < 25 || lat.P99MS > 800 {
		t.Fatalf("p99 = %gms, want between the medium bucket and the max", lat.P99MS)
	}
	if lat.MaxMS != 800 {
		t.Fatalf("max = %gms, want 800", lat.MaxMS)
	}
	if lat.P50MS > lat.P95MS || lat.P95MS > lat.P99MS || lat.P99MS > lat.MaxMS {
		t.Fatalf("percentiles not monotonic: p50=%g p95=%g p99=%g max=%g",
			lat.P50MS, lat.P95MS, lat.P99MS, lat.MaxMS)
	}
}

// TestCommSnapshotServeBlock demands the serve block appears in the
// JSON dump exactly when the node served traffic.
func TestCommSnapshotServeBlock(t *testing.T) {
	c := NewComm()
	idle, _ := json.Marshal(c.Snapshot())
	if string(idle) == "" || c.Snapshot().Serve != nil {
		t.Fatalf("idle node grew a serve block: %s", idle)
	}
	c.Serve().CountRequest()
	c.Serve().RecordBatch(3)
	c.Serve().RecordLatency(2 * time.Millisecond)
	snap := c.Snapshot()
	if snap.Serve == nil || snap.Serve.Requests != 1 || snap.Serve.Predictions != 3 {
		t.Fatalf("serve block = %+v", snap.Serve)
	}
	buf, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back CommSnapshot
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Serve == nil || back.Serve.Latency.Count != 1 {
		t.Fatalf("serve block did not survive the JSON round trip: %s", buf)
	}
}
