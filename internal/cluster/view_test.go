package cluster

import "testing"

func TestViewBasics(t *testing.T) {
	v := Initial(5)
	if v.Epoch != 0 || v.Size() != 5 || v.Leader() != 0 {
		t.Fatalf("Initial(5) = %v", v)
	}
	for r := 0; r < 5; r++ {
		if v.Index(r) != r || !v.Contains(r) {
			t.Fatalf("rank %d: index %d contains %v", r, v.Index(r), v.Contains(r))
		}
	}
	if v.Contains(5) || v.Index(5) != -1 {
		t.Fatal("rank 5 should not be a member")
	}
}

func TestViewNext(t *testing.T) {
	v := Initial(5)
	shrunk := v.Next([]int{2}, nil)
	if shrunk.Epoch != 1 || shrunk.Size() != 4 || shrunk.Contains(2) {
		t.Fatalf("Next(-2) = %v", shrunk)
	}
	// Dense indices compact past the hole.
	if shrunk.Index(3) != 2 || shrunk.Index(4) != 3 {
		t.Fatalf("dense indices after removal: %v", shrunk.Members)
	}
	grown := shrunk.Next(nil, []int{2})
	if grown.Epoch != 2 || grown.Size() != 5 || grown.Index(2) != 2 {
		t.Fatalf("Next(+2) = %v", grown)
	}
	// Simultaneous death and rejoin of the same rank: death wins.
	both := v.Next([]int{1}, []int{1})
	if both.Contains(1) {
		t.Fatalf("dead rank resurrected: %v", both)
	}
	// Duplicate joins collapse.
	dup := shrunk.Next(nil, []int{2, 2})
	if dup.Size() != 5 {
		t.Fatalf("duplicate join: %v", dup)
	}
}

func TestViewWireRoundTrip(t *testing.T) {
	v := View{Epoch: 7, Members: []int{0, 2, 3, 9}}
	buf := v.AppendWire([]byte{0xAA}) // leading byte the decoder never sees
	got, rest, err := DecodeWire(buf[1:])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) || len(rest) != 0 {
		t.Fatalf("round trip: %v rest=%d", got, len(rest))
	}
	if _, _, err := DecodeWire(buf[1:5]); err == nil {
		t.Fatal("truncated encoding accepted")
	}
	// Non-ascending member lists are rejected.
	bad := View{Epoch: 1, Members: []int{3, 2}}.AppendWire(nil)
	if _, _, err := DecodeWire(bad); err == nil {
		t.Fatal("non-ascending members accepted")
	}
	if !v.Clone().Equal(v) {
		t.Fatal("clone differs")
	}
}
