// Package cluster defines the versioned membership vocabulary of the
// elastic runtime: a View names the epoch and the live worker ranks,
// and every layer that used to hard-code a fixed mesh size N — the
// transport's peer lifecycle, the comm router's shard/group sizing, the
// planner's ClusterShape, the trainer's data sharding — now derives it
// from the current View instead. Views advance only at membership
// barriers (the generalization of the replan barrier), so an epoch
// number fully determines who participated in every fold of that
// epoch — the property that keeps replicas byte-identical across
// join/leave/crash transitions.
package cluster

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// View is one membership epoch: the set of live worker ranks (slot ids
// in the cluster's fixed address space, ascending) and the epoch
// counter that versions it. The zero View (epoch 0, no members) is
// "unformed".
type View struct {
	Epoch   int
	Members []int
}

// Initial returns epoch 0 with members 0..n-1 — the fixed-size mesh
// every cluster starts as.
func Initial(n int) View {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return View{Epoch: 0, Members: m}
}

// Size returns the number of live members.
func (v View) Size() int { return len(v.Members) }

// Contains reports whether rank is a live member.
func (v View) Contains(rank int) bool { return v.Index(rank) >= 0 }

// Index returns rank's dense index in the member list (the worker's
// position for data sharding and KV fold ordering), or -1 when rank is
// not a member. Dense indices are what the comm layer's fixed-size
// protocol state is built over; the view is the translation table
// between them and transport slot ranks.
func (v View) Index(rank int) int {
	i := sort.SearchInts(v.Members, rank)
	if i < len(v.Members) && v.Members[i] == rank {
		return i
	}
	return -1
}

// Leader returns the lowest live rank — the member that composes the
// next view during a membership barrier. -1 when the view is empty.
func (v View) Leader() int {
	if len(v.Members) == 0 {
		return -1
	}
	return v.Members[0]
}

// Next derives the successor view: epoch+1, with the dead ranks removed
// and the joined ranks added (both sets may be empty; unknown dead
// ranks are ignored, duplicate joins collapse).
func (v View) Next(dead, joined []int) View {
	drop := make(map[int]bool, len(dead))
	for _, r := range dead {
		drop[r] = true
	}
	members := make([]int, 0, len(v.Members)+len(joined))
	for _, r := range v.Members {
		if !drop[r] {
			members = append(members, r)
		}
	}
	for _, r := range joined {
		if !drop[r] {
			members = append(members, r)
		}
	}
	sort.Ints(members)
	// Collapse duplicates (a rejoining rank may race its own removal).
	out := members[:0]
	for i, r := range members {
		if i == 0 || members[i-1] != r {
			out = append(out, r)
		}
	}
	return View{Epoch: v.Epoch + 1, Members: out}
}

// Clone deep-copies the view.
func (v View) Clone() View {
	return View{Epoch: v.Epoch, Members: append([]int(nil), v.Members...)}
}

// Equal reports whether two views name the same epoch and members.
func (v View) Equal(o View) bool {
	if v.Epoch != o.Epoch || len(v.Members) != len(o.Members) {
		return false
	}
	for i, r := range v.Members {
		if o.Members[i] != r {
			return false
		}
	}
	return true
}

// String renders "epoch 3 {0 1 3 4}".
func (v View) String() string { return fmt.Sprintf("epoch %d %v", v.Epoch, v.Members) }

// AppendWire appends the view's wire encoding (u32 epoch, u32 count,
// u32 per member, little-endian) to buf.
func (v View) AppendWire(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Epoch))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Members)))
	for _, r := range v.Members {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r))
	}
	return buf
}

// DecodeWire parses a view from the front of buf and returns the
// remainder.
func DecodeWire(buf []byte) (View, []byte, error) {
	if len(buf) < 8 {
		return View{}, nil, fmt.Errorf("cluster: short view encoding: %d bytes", len(buf))
	}
	v := View{Epoch: int(binary.LittleEndian.Uint32(buf))}
	n := int(binary.LittleEndian.Uint32(buf[4:]))
	buf = buf[8:]
	if n < 0 || len(buf) < 4*n {
		return View{}, nil, fmt.Errorf("cluster: view encoding truncated: %d members, %d bytes left", n, len(buf))
	}
	v.Members = make([]int, n)
	for i := range v.Members {
		v.Members[i] = int(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	for i := 1; i < n; i++ {
		if v.Members[i] <= v.Members[i-1] {
			return View{}, nil, fmt.Errorf("cluster: view members not strictly ascending: %v", v.Members)
		}
	}
	return v, buf[4*n:], nil
}
