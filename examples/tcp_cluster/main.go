// tcp_cluster demonstrates the production TCP transport end to end: it
// drives cmd/poseidon-cluster, which forks three separate poseidon-worker
// OS processes (real sockets, versioned handshakes, length-prefixed
// frames, graceful goodbye on close) wired into one loopback mesh and
// training a CNN with the paper's full protocol — sharded BSP KV store
// for conv layers, sufficient-factor broadcasting for FC layers. The
// run is seeded with a deliberately optimistic -bw claim and
// -replan-every, so the cluster re-measures its real wire rate at the
// epoch barriers and re-routes live (watch for REPLAN route flips in
// the METRICS lines) — and the replica digests still agree, because
// route swaps happen at clock-stamped round barriers on every worker.
//
//	go run ./examples/tcp_cluster
//
// See README.md in this directory for the manual walkthrough (running
// workers by hand, the wire format, and the kill-a-worker failure demo).
package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcp_cluster: %v\n", err)
		os.Exit(1)
	}
	cmd := exec.Command("go", "run", "./cmd/poseidon-cluster",
		"-n", "3", "-iters", "30", "-mode", "hybrid", "-seed", "5",
		"-print-every", "10", "-dump-losses", "-timeout", "5m",
		"-bw", "1e9", "-frame-overhead", "2e-5", "-replan-every", "10", "-replan-alpha", "1", "-metrics-dump")
	cmd.Dir = root
	out := &teeBuffer{dst: os.Stdout}
	cmd.Stdout = out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "tcp_cluster: %v\n", err)
		os.Exit(1)
	}
	// BSP invariant: every worker printed the same digest of its final
	// replica (the PARAMS lines), so the processes hold byte-identical
	// parameters after the last synchronized round.
	digests := regexp.MustCompile(`\[w\d+\] PARAMS ([0-9a-f]{16})`).FindAllStringSubmatch(out.String(), -1)
	if len(digests) != 3 {
		fmt.Fprintf(os.Stderr, "tcp_cluster: expected 3 PARAMS digests, found %d\n", len(digests))
		os.Exit(1)
	}
	for _, d := range digests[1:] {
		if d[1] != digests[0][1] {
			fmt.Fprintln(os.Stderr, "tcp_cluster: REPLICAS DIVERGED — protocol bug!")
			os.Exit(1)
		}
	}
	fmt.Printf("\n3 OS processes trained over real TCP; all replicas agree (param digest %s — BSP held).\n",
		digests[0][1])
}

// teeBuffer mirrors the child's output to the terminal while keeping a
// copy for the replica-digest check.
type teeBuffer struct {
	dst *os.File
	buf strings.Builder
}

func (t *teeBuffer) Write(p []byte) (int, error) {
	t.buf.Write(p)
	return t.dst.Write(p)
}

func (t *teeBuffer) String() string { return t.buf.String() }

// moduleRoot walks up from the working directory to the go.mod, so the
// example runs from anywhere inside the repo.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory; run from inside the repo")
		}
		dir = parent
	}
}
