// tcp_cluster runs a real distributed training cluster over TCP: it
// forks N worker goroutines that each join a loopback TCP mesh (real
// sockets, real length-prefixed frames, real tensors) and train a CNN
// with the paper's full protocol — sharded BSP KV store for conv
// layers, sufficient-factor broadcasting for FC layers. At the end it
// verifies every replica holds byte-identical parameters (the BSP
// guarantee).
//
//	go run ./examples/tcp_cluster
package main

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/data"
	"repro/internal/nn/autodiff"
	"repro/internal/train"
	"repro/internal/transport"
)

func main() {
	const workers = 3
	addrs := []string{"127.0.0.1:39801", "127.0.0.1:39802", "127.0.0.1:39803"}

	full := data.Synthetic(99, 640, 10, 3, 8, 8, 0.35)
	trainSet, testSet := full.Split(512)
	cfg := train.Config{
		Workers: workers, Iters: 30, Batch: 8, LR: 0.1,
		Mode: train.Hybrid, Seed: 5,
		BuildNet: func(rng *rand.Rand) *autodiff.Network {
			net, _, _, _ := autodiff.CIFARQuickNet(4, 10, rng)
			return net
		},
		TrainSet: trainSet, TestSet: testSet, EvalEvery: 10,
	}

	results := make([]*train.Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			mesh, err := transport.NewTCPMesh(w, addrs)
			if err != nil {
				panic(fmt.Sprintf("worker %d mesh: %v", w, err))
			}
			defer mesh.Close()
			res, err := train.RunWorker(cfg, mesh)
			if err != nil {
				panic(fmt.Sprintf("worker %d: %v", w, err))
			}
			results[w] = res
		}()
	}
	wg.Wait()

	fmt.Printf("trained %d workers over real TCP (%v)\n\n", workers, addrs)
	for _, p := range results[0].Curve {
		if (p.Iter+1)%10 == 0 {
			fmt.Printf("iter %2d  loss %.4f", p.Iter+1, p.TrainLoss)
			if p.TestErr >= 0 {
				fmt.Printf("  test error %.3f", p.TestErr)
			}
			fmt.Println()
		}
	}

	// BSP invariant: all replicas identical after the final barrier.
	worst := 0.0
	p0 := results[0].Final.Params()
	for w := 1; w < workers; w++ {
		pw := results[w].Final.Params()
		for i := range p0 {
			for j := range p0[i].Data {
				d := math.Abs(float64(p0[i].Data[j] - pw[i].Data[j]))
				if d > worst {
					worst = d
				}
			}
		}
	}
	fmt.Printf("\nmax cross-replica parameter divergence: %g ", worst)
	if worst < 1e-6 {
		fmt.Println("(replicas agree: BSP held over TCP)")
	} else {
		fmt.Println("(REPLICAS DIVERGED — protocol bug!)")
	}
}
