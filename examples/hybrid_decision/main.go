// hybrid_decision walks through Algorithm 1 (BestScheme) on VGG19-22K:
// for every FC layer it prints the PS and SFB wire costs from Table 1's
// formulas and the scheme the coordinator picks, across cluster sizes —
// showing the SFB→PS crossover as the quadratic SFB cost catches up.
// Everything it needs is re-exported by the public poseidon package.
//
//	go run ./examples/hybrid_decision
package main

import (
	"fmt"

	"repro/internal/nn"
	"repro/poseidon"
)

func main() {
	m := nn.VGG19_22K()
	fmt.Printf("Model: %s (%d params, %.0f%% in FC layers)\n\n",
		m.Name, m.TotalParams(), 100*float64(m.FCParams())/float64(m.TotalParams()))

	for _, workers := range []int{2, 8, 32, 128, 512} {
		shape := poseidon.ClusterShape{Workers: workers, Servers: workers, Batch: 32}
		co := poseidon.NewCoordinator(m, shape)
		fmt.Printf("P1=P2=%d, K=32:\n", workers)
		for _, p := range co.Plan() {
			l := &m.Layers[p.Layer]
			if !l.SFCapable() {
				continue
			}
			mm, nn2 := l.GradMatrixShape()
			ps := poseidon.PSColocatedParams(mm, nn2, shape)
			sfb := poseidon.SFBWorkerParams(mm, nn2, shape)
			fmt.Printf("  %-4s %6dx%-5d  PS %7.1fM  SFB %7.1fM  -> %s\n",
				l.Name, mm, nn2, float64(ps)/1e6, float64(sfb)/1e6, p.Scheme)
		}
		fmt.Println()
	}
	fmt.Println("SFB cost grows ~quadratically with workers; Algorithm 1 flips each")
	fmt.Println("layer back to the sharded PS exactly at its crossover.")
}
