// Quickstart: train a real CNN data-parallel on an in-process 4-worker
// Poseidon cluster through the poseidon.Session facade (functional
// plane), then simulate the same model's scaling on a 32-node GPU
// cluster (performance plane).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/data"
	"repro/internal/engine"
	"repro/internal/nn"
	"repro/internal/nn/autodiff"
	"repro/poseidon"
)

func main() {
	fmt.Println("== Poseidon quickstart ==")
	fmt.Println()
	fmt.Println("-- functional plane: real 4-worker data-parallel training --")

	full := data.Synthetic(1, 1280, 10, 3, 8, 8, 0.35)
	trainSet, testSet := full.Split(1024)

	// One builder owns the whole run: model, data, policy, metrics. The
	// four in-process workers share the session's registry, so the
	// snapshot below is cluster-wide traffic.
	sess, err := poseidon.NewSession().
		InProcess(4).
		Iterations(60).Batch(8).LearningRate(0.1).Seed(7).
		Mode(poseidon.Hybrid).
		Model(func(rng *rand.Rand) *autodiff.Network {
			net, _, _, _ := autodiff.CIFARQuickNet(4, 10, rng)
			return net
		}).
		Data(trainSet, testSet).EvalEvery(15).
		CollectMetrics().
		Build()
	if err != nil {
		panic(err)
	}

	// Algorithm 1's routing plan, straight from the cost model the
	// trainer consults (poseidon.Planner) — FC weights that clear the
	// SFB threshold leave the parameter server.
	fmt.Println("routing plan (Algorithm 1):")
	decisions, err := sess.Plan()
	if err != nil {
		panic(err)
	}
	for _, d := range decisions {
		fmt.Printf("  param %2d %-8s %4dx%-5d -> %-4v (PS cost %6d, SFB cost %6d params/node)\n",
			d.Spec.Index, d.Spec.Name, d.Spec.Rows, d.Spec.Cols, d.Scheme, d.PSParams, d.SFBParams)
	}
	fmt.Println()

	res, err := sess.Run()
	if err != nil {
		panic(err)
	}
	for _, p := range res.Curve {
		if (p.Iter+1)%15 == 0 {
			fmt.Printf("iter %3d  train loss %.4f", p.Iter+1, p.TrainLoss)
			if p.TestErr >= 0 {
				fmt.Printf("  test error %.3f", p.TestErr)
			}
			fmt.Println()
		}
	}

	// What actually moved between workers, per route (the in-process
	// mesh attributes per-message traffic exactly like TCP would).
	snap, _ := sess.MetricsSnapshot()
	byRoute := map[string]int64{}
	for _, p := range snap.Params {
		byRoute[p.Route] += p.BytesSent + p.BytesRecv
	}
	fmt.Println()
	fmt.Println("measured cluster traffic by route:")
	for _, route := range []string{"PS", "SFB", "1bit"} {
		if bytes, ok := byRoute[route]; ok {
			fmt.Printf("  %-4s %8.2f KB\n", route, float64(bytes)/1024)
		}
	}
	fmt.Printf("  SFB saved %.2f KB vs pure PS (Table 1 equivalent)\n",
		float64(snap.Totals.SFBSavingsBytes)/1024)

	fmt.Println()
	fmt.Println("-- performance plane: VGG19 on a simulated 40GbE Titan X cluster --")
	for _, p := range []int{1, 8, 32} {
		r := engine.Run(engine.Config{
			Model: nn.VGG19(), Workers: p, Strategy: engine.HybComm, Engine: "caffe",
		})
		fmt.Printf("%2d nodes: %7.1f images/s  speedup %5.2fx  schemes %s\n",
			p, r.Throughput, r.Speedup, r.SchemeSummary)
	}
}
