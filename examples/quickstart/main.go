// Quickstart: train a real CNN data-parallel on an in-process 4-worker
// Poseidon cluster (functional plane), then simulate the same model's
// scaling on a 32-node GPU cluster (performance plane).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/data"
	"repro/internal/engine"
	"repro/internal/nn"
	"repro/internal/nn/autodiff"
	"repro/internal/train"
)

func main() {
	fmt.Println("== Poseidon quickstart ==")
	fmt.Println()
	fmt.Println("-- functional plane: real 4-worker data-parallel training --")

	full := data.Synthetic(1, 1280, 10, 3, 8, 8, 0.35)
	trainSet, testSet := full.Split(1024)
	res, err := train.Run(train.Config{
		Workers: 4, Iters: 60, Batch: 8, LR: 0.1,
		Mode: train.Hybrid, Seed: 7,
		BuildNet: func(rng *rand.Rand) *autodiff.Network {
			net, _, _, _ := autodiff.CIFARQuickNet(4, 10, rng)
			return net
		},
		TrainSet: trainSet, TestSet: testSet, EvalEvery: 15,
	})
	if err != nil {
		panic(err)
	}
	for _, p := range res.Curve {
		if (p.Iter+1)%15 == 0 {
			fmt.Printf("iter %3d  train loss %.4f", p.Iter+1, p.TrainLoss)
			if p.TestErr >= 0 {
				fmt.Printf("  test error %.3f", p.TestErr)
			}
			fmt.Println()
		}
	}

	fmt.Println()
	fmt.Println("-- performance plane: VGG19 on a simulated 40GbE Titan X cluster --")
	for _, p := range []int{1, 8, 32} {
		r := engine.Run(engine.Config{
			Model: nn.VGG19(), Workers: p, Strategy: engine.HybComm, Engine: "caffe",
		})
		fmt.Printf("%2d nodes: %7.1f images/s  speedup %5.2fx  schemes %s\n",
			p, r.Throughput, r.Speedup, r.SchemeSummary)
	}
}
