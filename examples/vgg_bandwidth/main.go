// vgg_bandwidth sweeps VGG19 training across cluster sizes, bandwidths,
// and communication strategies on the performance plane — the
// experiment that motivates HybComm (paper Section 5.2): under
// commodity 10GbE a parameter server saturates while Poseidon keeps
// scaling by shipping FC layers as sufficient factors.
//
//	go run ./examples/vgg_bandwidth
package main

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/nn"
)

func main() {
	fig := metrics.NewFigure("VGG19 speedup vs nodes, by strategy and bandwidth",
		"nodes", "speedup")
	for _, bw := range []float64{10, 40} {
		for _, st := range []engine.Strategy{engine.SeqPS, engine.WFBP, engine.HybComm} {
			s := fig.SeriesNamed(fmt.Sprintf("%v@%gGbE", st, bw))
			for _, p := range []int{1, 2, 4, 8, 16} {
				r := engine.Run(engine.Config{
					Model: nn.VGG19(), Workers: p, Strategy: st,
					Engine: "caffe", Bandwidth: netsim.Gbps(bw),
				})
				s.Add(float64(p), r.Speedup)
			}
		}
	}
	fmt.Println(fig.Render())

	fmt.Println("Where the bytes go at 16 nodes, 10GbE:")
	for _, st := range []engine.Strategy{engine.WFBP, engine.HybComm} {
		r := engine.Run(engine.Config{
			Model: nn.VGG19(), Workers: 16, Strategy: st,
			Engine: "caffe", Bandwidth: netsim.Gbps(10),
		})
		var maxTx float64
		for _, g := range r.NodeTxGbit {
			if g > maxTx {
				maxTx = g
			}
		}
		fmt.Printf("  %-9v egress %.2f Gbit/node/iter, iteration %.3fs, GPU stall %.0f%%\n",
			st, maxTx, r.IterTime, r.GPUStallFrac*100)
	}
}
