// vgg_bandwidth sweeps VGG19 training across cluster sizes, bandwidths,
// and communication strategies on the performance plane — the
// experiment that motivates HybComm (paper Section 5.2): under
// commodity 10GbE a parameter server saturates while Poseidon keeps
// scaling by shipping FC layers as sufficient factors. It closes with
// the functional-plane counterpart: a live poseidon.Session started
// with a deliberately wrong bandwidth claim, re-planning itself onto
// the link it actually measures.
//
//	go run ./examples/vgg_bandwidth
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/data"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/nn"
	"repro/internal/nn/autodiff"
	"repro/poseidon"
)

func main() {
	fig := metrics.NewFigure("VGG19 speedup vs nodes, by strategy and bandwidth",
		"nodes", "speedup")
	for _, bw := range []float64{10, 40} {
		for _, st := range []engine.Strategy{engine.SeqPS, engine.WFBP, engine.HybComm} {
			s := fig.SeriesNamed(fmt.Sprintf("%v@%gGbE", st, bw))
			for _, p := range []int{1, 2, 4, 8, 16} {
				r := engine.Run(engine.Config{
					Model: nn.VGG19(), Workers: p, Strategy: st,
					Engine: "caffe", Bandwidth: netsim.Gbps(bw),
				})
				s.Add(float64(p), r.Speedup)
			}
		}
	}
	fmt.Println(fig.Render())

	fmt.Println("Where the bytes go at 16 nodes, 10GbE:")
	for _, st := range []engine.Strategy{engine.WFBP, engine.HybComm} {
		r := engine.Run(engine.Config{
			Model: nn.VGG19(), Workers: 16, Strategy: st,
			Engine: "caffe", Bandwidth: netsim.Gbps(10),
		})
		var maxTx float64
		for _, g := range r.NodeTxGbit {
			if g > maxTx {
				maxTx = g
			}
		}
		fmt.Printf("  %-9v egress %.2f Gbit/node/iter, iteration %.3fs, GPU stall %.0f%%\n",
			st, maxTx, r.IterTime, r.GPUStallFrac*100)
	}

	// Functional plane: the same bandwidth-sensitivity, live. The
	// session is told the link runs at 100 KB/s (so Algorithm 1 puts the
	// FC weights on SFB), measures what the in-process mesh really
	// moves, and re-plans at the epoch barrier.
	fmt.Println()
	fmt.Println("Measured-bandwidth replanning on a live 4-worker session:")
	trainSet := data.Synthetic(3, 640, 4, 1, 4, 4, 0.3)
	sess, err := poseidon.NewSession().
		InProcess(4).
		Iterations(16).Batch(2).LearningRate(0.05).Seed(9).
		Model(func(rng *rand.Rand) *autodiff.Network {
			return autodiff.MLPNet(16, []int{32}, 4, rng)
		}).
		Data(trainSet, nil).
		Bandwidth(100e3). // a deliberately wrong claim
		Replan(poseidon.ReplanSpec{Every: 8, Alpha: 1}).
		CollectMetrics().
		Build()
	if err != nil {
		panic(err)
	}
	if _, err := sess.Run(); err != nil {
		panic(err)
	}
	snap, _ := sess.MetricsSnapshot()
	fmt.Printf("  claimed 100.0 KB/s, measured %.1f KB/s\n", snap.BWEstimateBPS/1024)
	// The in-process workers share one registry, so each flip is logged
	// once per worker — print it once.
	seen := map[string]bool{}
	for _, e := range snap.ReplanEvents {
		line := fmt.Sprintf("  iter %d: param %d (%s) re-routed %s -> %s (on every worker)",
			e.Iter, e.Param, e.Name, e.From, e.To)
		if !seen[line] {
			seen[line] = true
			fmt.Println(line)
		}
	}
	if len(snap.ReplanEvents) == 0 {
		fmt.Println("  (no route flipped — the claim happened to match the measurement)")
	}
}
